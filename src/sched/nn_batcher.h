#ifndef IQ_SCHED_NN_BATCHER_H_
#define IQ_SCHED_NN_BATCHER_H_

#include <cstdint>
#include <functional>

#include "io/disk_model.h"

namespace iq {

/// Inclusive page range [first, last] to load in one sequential access.
struct BatchRange {
  uint64_t first = 0;
  uint64_t last = 0;

  uint64_t count() const { return last - first + 1; }
  bool operator==(const BatchRange&) const = default;
};

/// Returns the access probability of the page at the given file position
/// for the current query state: 0 for already-processed or pruned pages,
/// 1 for the pivot, the §2.2 estimate otherwise.
using AccessProbabilityFn = std::function<double(uint64_t page_position)>;

/// The paper's time-optimized NN page batching (§2.1,
/// `time_optimized_nearest_neighbor` inner loops).
///
/// Starting from the pivot page (probability 100%), walk forward and
/// backward through file positions accumulating the cost balance
/// c_i = t_xfer - p_i * (t_seek + t_xfer) per page (eq. 1). Whenever the
/// cumulated balance goes negative, extend the range to the current
/// page and reset the balance; stop a direction once the cumulated
/// balance exceeds t_seek. The result is the page range to load in one
/// sequential access.
BatchRange PlanNnBatch(uint64_t pivot_position, uint64_t num_pages,
                       const DiskParameters& disk,
                       const AccessProbabilityFn& probability);

/// Simulated time one planned batch costs: one seek plus t_xfer per
/// block of the range. This is what the scheduler committed to when it
/// chose the batch, so the tracer records it next to the observed io_s
/// (calibration telemetry, docs/observability.md).
double BatchCost(const BatchRange& range, const DiskParameters& disk);

}  // namespace iq

#endif  // IQ_SCHED_NN_BATCHER_H_
