#include "sched/fetch_plan.h"

#include <cassert>

namespace iq {

std::vector<FetchRun> PlanKnownSetFetch(std::span<const uint64_t> blocks,
                                        const DiskParameters& disk,
                                        uint64_t max_run_blocks) {
  std::vector<FetchRun> runs;
  if (blocks.empty()) return runs;
  // Gap of `gap` skipped blocks is worth over-reading iff
  // gap * t_xfer < t_seek (the paper's (p_{i+1} - p_i - 1) * t_xfer
  // < t_seek condition).
  const double max_gap_blocks = disk.SeekEquivalentBlocks();
  runs.push_back({blocks[0], 1});
  for (size_t i = 1; i < blocks.size(); ++i) {
    assert(blocks[i] > blocks[i - 1] && "blocks must be sorted and unique");
    FetchRun& current = runs.back();
    const uint64_t next_after_run = current.first + current.count;
    const uint64_t gap = blocks[i] - next_after_run;
    const uint64_t merged_count = blocks[i] - current.first + 1;
    const bool fits_buffer =
        max_run_blocks == 0 || merged_count <= max_run_blocks;
    if (static_cast<double>(gap) < max_gap_blocks && fits_buffer) {
      // Over-read the gap and the block itself.
      current.count = merged_count;
    } else {
      runs.push_back({blocks[i], 1});
    }
  }
  return runs;
}

double PlanCost(std::span<const FetchRun> runs, const DiskParameters& disk) {
  double cost = 0.0;
  for (const FetchRun& run : runs) {
    cost += disk.seek_time_s +
            disk.xfer_time_s * static_cast<double>(run.count);
  }
  return cost;
}

}  // namespace iq
