#include "sched/nn_batcher.h"

#include <cassert>

namespace iq {

BatchRange PlanNnBatch(uint64_t pivot_position, uint64_t num_pages,
                       const DiskParameters& disk,
                       const AccessProbabilityFn& probability) {
  assert(pivot_position < num_pages);
  BatchRange range{pivot_position, pivot_position};
  const double t_seek = disk.seek_time_s;
  const double t_xfer = disk.xfer_time_s;

  // Forward search for pages to load additionally.
  double ccb = 0.0;
  for (uint64_t i = pivot_position + 1; i < num_pages; ++i) {
    const double a = probability(i);
    ccb += t_xfer - a * (t_seek + t_xfer);
    if (ccb < 0) {
      range.last = i;
      ccb = 0.0;
    }
    if (ccb >= t_seek) break;
  }

  // Backward search.
  ccb = 0.0;
  for (uint64_t i = pivot_position; i-- > 0;) {
    const double a = probability(i);
    ccb += t_xfer - a * (t_seek + t_xfer);
    if (ccb < 0) {
      range.first = i;
      ccb = 0.0;
    }
    if (ccb >= t_seek) break;
  }
  return range;
}

double BatchCost(const BatchRange& range, const DiskParameters& disk) {
  return disk.seek_time_s +
         static_cast<double>(range.count()) * disk.xfer_time_s;
}

}  // namespace iq
