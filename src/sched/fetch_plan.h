#ifndef IQ_SCHED_FETCH_PLAN_H_
#define IQ_SCHED_FETCH_PLAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "io/disk_model.h"

namespace iq {

/// A maximal sequential run of blocks to read in one disk access.
struct FetchRun {
  uint64_t first = 0;
  uint64_t count = 0;

  bool operator==(const FetchRun&) const = default;
};

/// Optimal fetch plan for a *known* set of blocks (paper §2, Fig. 1;
/// Seeger et al. [19]): walk the sorted block list and over-read the gap
/// to the next block whenever gap * t_xfer < t_seek, else start a new
/// run with a seek. Blocks must be sorted ascending and unique.
///
/// `max_run_blocks` models a limited read buffer ([19]'s generalized
/// problem): no run exceeds that many blocks; 0 means unbounded. Under
/// a buffer limit the plan is the optimal greedy one for that limit
/// (runs are split at the latest possible position).
std::vector<FetchRun> PlanKnownSetFetch(std::span<const uint64_t> blocks,
                                        const DiskParameters& disk,
                                        uint64_t max_run_blocks = 0);

/// Simulated time to execute a plan from a cold head position:
/// one seek per run plus t_xfer per block in the run.
double PlanCost(std::span<const FetchRun> runs, const DiskParameters& disk);

}  // namespace iq

#endif  // IQ_SCHED_FETCH_PLAN_H_
