# Empty dependencies file for iq_sched.
# This may be replaced when dependencies are built.
