file(REMOVE_RECURSE
  "CMakeFiles/iq_sched.dir/sched/fetch_plan.cc.o"
  "CMakeFiles/iq_sched.dir/sched/fetch_plan.cc.o.d"
  "CMakeFiles/iq_sched.dir/sched/nn_batcher.cc.o"
  "CMakeFiles/iq_sched.dir/sched/nn_batcher.cc.o.d"
  "libiq_sched.a"
  "libiq_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
