file(REMOVE_RECURSE
  "libiq_sched.a"
)
