file(REMOVE_RECURSE
  "CMakeFiles/iq_quant.dir/quant/bit_stream.cc.o"
  "CMakeFiles/iq_quant.dir/quant/bit_stream.cc.o.d"
  "CMakeFiles/iq_quant.dir/quant/grid_quantizer.cc.o"
  "CMakeFiles/iq_quant.dir/quant/grid_quantizer.cc.o.d"
  "libiq_quant.a"
  "libiq_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
