# Empty dependencies file for iq_quant.
# This may be replaced when dependencies are built.
