file(REMOVE_RECURSE
  "libiq_quant.a"
)
