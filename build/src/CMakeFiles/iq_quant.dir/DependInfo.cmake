
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/bit_stream.cc" "src/CMakeFiles/iq_quant.dir/quant/bit_stream.cc.o" "gcc" "src/CMakeFiles/iq_quant.dir/quant/bit_stream.cc.o.d"
  "/root/repo/src/quant/grid_quantizer.cc" "src/CMakeFiles/iq_quant.dir/quant/grid_quantizer.cc.o" "gcc" "src/CMakeFiles/iq_quant.dir/quant/grid_quantizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
