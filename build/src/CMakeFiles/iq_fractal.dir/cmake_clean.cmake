file(REMOVE_RECURSE
  "CMakeFiles/iq_fractal.dir/fractal/fractal_dimension.cc.o"
  "CMakeFiles/iq_fractal.dir/fractal/fractal_dimension.cc.o.d"
  "libiq_fractal.a"
  "libiq_fractal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_fractal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
