# Empty compiler generated dependencies file for iq_fractal.
# This may be replaced when dependencies are built.
