file(REMOVE_RECURSE
  "libiq_fractal.a"
)
