# Empty dependencies file for iq_rstar.
# This may be replaced when dependencies are built.
