file(REMOVE_RECURSE
  "libiq_rstar.a"
)
