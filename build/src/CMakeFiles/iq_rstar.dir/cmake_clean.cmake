file(REMOVE_RECURSE
  "CMakeFiles/iq_rstar.dir/rstar/r_star_ops.cc.o"
  "CMakeFiles/iq_rstar.dir/rstar/r_star_ops.cc.o.d"
  "CMakeFiles/iq_rstar.dir/rstar/r_star_tree.cc.o"
  "CMakeFiles/iq_rstar.dir/rstar/r_star_tree.cc.o.d"
  "libiq_rstar.a"
  "libiq_rstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_rstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
