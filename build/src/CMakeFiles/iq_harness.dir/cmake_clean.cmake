file(REMOVE_RECURSE
  "CMakeFiles/iq_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/iq_harness.dir/harness/experiment.cc.o.d"
  "libiq_harness.a"
  "libiq_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
