# Empty compiler generated dependencies file for iq_harness.
# This may be replaced when dependencies are built.
