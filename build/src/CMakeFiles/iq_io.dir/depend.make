# Empty dependencies file for iq_io.
# This may be replaced when dependencies are built.
