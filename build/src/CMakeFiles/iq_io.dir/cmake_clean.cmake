file(REMOVE_RECURSE
  "CMakeFiles/iq_io.dir/io/block_cache.cc.o"
  "CMakeFiles/iq_io.dir/io/block_cache.cc.o.d"
  "CMakeFiles/iq_io.dir/io/block_file.cc.o"
  "CMakeFiles/iq_io.dir/io/block_file.cc.o.d"
  "CMakeFiles/iq_io.dir/io/disk_model.cc.o"
  "CMakeFiles/iq_io.dir/io/disk_model.cc.o.d"
  "CMakeFiles/iq_io.dir/io/extent_file.cc.o"
  "CMakeFiles/iq_io.dir/io/extent_file.cc.o.d"
  "CMakeFiles/iq_io.dir/io/storage.cc.o"
  "CMakeFiles/iq_io.dir/io/storage.cc.o.d"
  "libiq_io.a"
  "libiq_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
