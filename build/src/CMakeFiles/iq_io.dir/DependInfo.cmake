
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/block_cache.cc" "src/CMakeFiles/iq_io.dir/io/block_cache.cc.o" "gcc" "src/CMakeFiles/iq_io.dir/io/block_cache.cc.o.d"
  "/root/repo/src/io/block_file.cc" "src/CMakeFiles/iq_io.dir/io/block_file.cc.o" "gcc" "src/CMakeFiles/iq_io.dir/io/block_file.cc.o.d"
  "/root/repo/src/io/disk_model.cc" "src/CMakeFiles/iq_io.dir/io/disk_model.cc.o" "gcc" "src/CMakeFiles/iq_io.dir/io/disk_model.cc.o.d"
  "/root/repo/src/io/extent_file.cc" "src/CMakeFiles/iq_io.dir/io/extent_file.cc.o" "gcc" "src/CMakeFiles/iq_io.dir/io/extent_file.cc.o.d"
  "/root/repo/src/io/storage.cc" "src/CMakeFiles/iq_io.dir/io/storage.cc.o" "gcc" "src/CMakeFiles/iq_io.dir/io/storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
