file(REMOVE_RECURSE
  "libiq_io.a"
)
