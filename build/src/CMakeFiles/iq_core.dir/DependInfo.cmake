
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/format.cc" "src/CMakeFiles/iq_core.dir/core/format.cc.o" "gcc" "src/CMakeFiles/iq_core.dir/core/format.cc.o.d"
  "/root/repo/src/core/iq_tree.cc" "src/CMakeFiles/iq_core.dir/core/iq_tree.cc.o" "gcc" "src/CMakeFiles/iq_core.dir/core/iq_tree.cc.o.d"
  "/root/repo/src/core/iq_tree_builder.cc" "src/CMakeFiles/iq_core.dir/core/iq_tree_builder.cc.o" "gcc" "src/CMakeFiles/iq_core.dir/core/iq_tree_builder.cc.o.d"
  "/root/repo/src/core/iq_tree_search.cc" "src/CMakeFiles/iq_core.dir/core/iq_tree_search.cc.o" "gcc" "src/CMakeFiles/iq_core.dir/core/iq_tree_search.cc.o.d"
  "/root/repo/src/core/iq_tree_update.cc" "src/CMakeFiles/iq_core.dir/core/iq_tree_update.cc.o" "gcc" "src/CMakeFiles/iq_core.dir/core/iq_tree_update.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/CMakeFiles/iq_core.dir/core/partitioner.cc.o" "gcc" "src/CMakeFiles/iq_core.dir/core/partitioner.cc.o.d"
  "/root/repo/src/core/split_tree_optimizer.cc" "src/CMakeFiles/iq_core.dir/core/split_tree_optimizer.cc.o" "gcc" "src/CMakeFiles/iq_core.dir/core/split_tree_optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_fractal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
