file(REMOVE_RECURSE
  "CMakeFiles/iq_core.dir/core/format.cc.o"
  "CMakeFiles/iq_core.dir/core/format.cc.o.d"
  "CMakeFiles/iq_core.dir/core/iq_tree.cc.o"
  "CMakeFiles/iq_core.dir/core/iq_tree.cc.o.d"
  "CMakeFiles/iq_core.dir/core/iq_tree_builder.cc.o"
  "CMakeFiles/iq_core.dir/core/iq_tree_builder.cc.o.d"
  "CMakeFiles/iq_core.dir/core/iq_tree_search.cc.o"
  "CMakeFiles/iq_core.dir/core/iq_tree_search.cc.o.d"
  "CMakeFiles/iq_core.dir/core/iq_tree_update.cc.o"
  "CMakeFiles/iq_core.dir/core/iq_tree_update.cc.o.d"
  "CMakeFiles/iq_core.dir/core/partitioner.cc.o"
  "CMakeFiles/iq_core.dir/core/partitioner.cc.o.d"
  "CMakeFiles/iq_core.dir/core/split_tree_optimizer.cc.o"
  "CMakeFiles/iq_core.dir/core/split_tree_optimizer.cc.o.d"
  "libiq_core.a"
  "libiq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
