file(REMOVE_RECURSE
  "CMakeFiles/iq_scan.dir/scan/seq_scan.cc.o"
  "CMakeFiles/iq_scan.dir/scan/seq_scan.cc.o.d"
  "libiq_scan.a"
  "libiq_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
