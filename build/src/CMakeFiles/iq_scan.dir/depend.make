# Empty dependencies file for iq_scan.
# This may be replaced when dependencies are built.
