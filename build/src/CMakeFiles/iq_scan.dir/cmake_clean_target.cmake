file(REMOVE_RECURSE
  "libiq_scan.a"
)
