file(REMOVE_RECURSE
  "CMakeFiles/iq_xtree.dir/xtree/x_tree.cc.o"
  "CMakeFiles/iq_xtree.dir/xtree/x_tree.cc.o.d"
  "CMakeFiles/iq_xtree.dir/xtree/x_tree_build.cc.o"
  "CMakeFiles/iq_xtree.dir/xtree/x_tree_build.cc.o.d"
  "CMakeFiles/iq_xtree.dir/xtree/x_tree_search.cc.o"
  "CMakeFiles/iq_xtree.dir/xtree/x_tree_search.cc.o.d"
  "CMakeFiles/iq_xtree.dir/xtree/x_tree_update.cc.o"
  "CMakeFiles/iq_xtree.dir/xtree/x_tree_update.cc.o.d"
  "libiq_xtree.a"
  "libiq_xtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_xtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
