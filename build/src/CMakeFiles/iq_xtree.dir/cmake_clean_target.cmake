file(REMOVE_RECURSE
  "libiq_xtree.a"
)
