# Empty dependencies file for iq_xtree.
# This may be replaced when dependencies are built.
