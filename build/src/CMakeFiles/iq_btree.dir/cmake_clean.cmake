file(REMOVE_RECURSE
  "CMakeFiles/iq_btree.dir/btree/b_plus_tree.cc.o"
  "CMakeFiles/iq_btree.dir/btree/b_plus_tree.cc.o.d"
  "libiq_btree.a"
  "libiq_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
