file(REMOVE_RECURSE
  "libiq_btree.a"
)
