# Empty compiler generated dependencies file for iq_btree.
# This may be replaced when dependencies are built.
