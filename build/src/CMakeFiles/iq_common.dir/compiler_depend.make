# Empty compiler generated dependencies file for iq_common.
# This may be replaced when dependencies are built.
