file(REMOVE_RECURSE
  "CMakeFiles/iq_common.dir/common/math_utils.cc.o"
  "CMakeFiles/iq_common.dir/common/math_utils.cc.o.d"
  "CMakeFiles/iq_common.dir/common/status.cc.o"
  "CMakeFiles/iq_common.dir/common/status.cc.o.d"
  "CMakeFiles/iq_common.dir/common/table.cc.o"
  "CMakeFiles/iq_common.dir/common/table.cc.o.d"
  "libiq_common.a"
  "libiq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
