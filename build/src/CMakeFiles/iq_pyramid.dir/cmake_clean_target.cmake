file(REMOVE_RECURSE
  "libiq_pyramid.a"
)
