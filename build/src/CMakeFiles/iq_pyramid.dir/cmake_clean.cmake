file(REMOVE_RECURSE
  "CMakeFiles/iq_pyramid.dir/pyramid/pyramid_technique.cc.o"
  "CMakeFiles/iq_pyramid.dir/pyramid/pyramid_technique.cc.o.d"
  "libiq_pyramid.a"
  "libiq_pyramid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_pyramid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
