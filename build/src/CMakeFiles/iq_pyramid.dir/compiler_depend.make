# Empty compiler generated dependencies file for iq_pyramid.
# This may be replaced when dependencies are built.
