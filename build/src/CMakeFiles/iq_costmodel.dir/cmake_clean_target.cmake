file(REMOVE_RECURSE
  "libiq_costmodel.a"
)
