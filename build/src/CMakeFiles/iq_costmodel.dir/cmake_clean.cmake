file(REMOVE_RECURSE
  "CMakeFiles/iq_costmodel.dir/costmodel/access_probability.cc.o"
  "CMakeFiles/iq_costmodel.dir/costmodel/access_probability.cc.o.d"
  "CMakeFiles/iq_costmodel.dir/costmodel/cost_model.cc.o"
  "CMakeFiles/iq_costmodel.dir/costmodel/cost_model.cc.o.d"
  "libiq_costmodel.a"
  "libiq_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
