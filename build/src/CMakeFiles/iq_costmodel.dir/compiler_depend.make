# Empty compiler generated dependencies file for iq_costmodel.
# This may be replaced when dependencies are built.
