file(REMOVE_RECURSE
  "CMakeFiles/iq_data.dir/data/dataset.cc.o"
  "CMakeFiles/iq_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/iq_data.dir/data/dataset_io.cc.o"
  "CMakeFiles/iq_data.dir/data/dataset_io.cc.o.d"
  "CMakeFiles/iq_data.dir/data/generators.cc.o"
  "CMakeFiles/iq_data.dir/data/generators.cc.o.d"
  "libiq_data.a"
  "libiq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
