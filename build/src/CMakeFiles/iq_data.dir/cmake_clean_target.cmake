file(REMOVE_RECURSE
  "libiq_data.a"
)
