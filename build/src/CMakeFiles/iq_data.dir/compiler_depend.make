# Empty compiler generated dependencies file for iq_data.
# This may be replaced when dependencies are built.
