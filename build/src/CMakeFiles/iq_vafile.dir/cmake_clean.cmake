file(REMOVE_RECURSE
  "CMakeFiles/iq_vafile.dir/vafile/va_file.cc.o"
  "CMakeFiles/iq_vafile.dir/vafile/va_file.cc.o.d"
  "libiq_vafile.a"
  "libiq_vafile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_vafile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
