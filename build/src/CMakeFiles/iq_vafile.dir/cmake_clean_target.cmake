file(REMOVE_RECURSE
  "libiq_vafile.a"
)
