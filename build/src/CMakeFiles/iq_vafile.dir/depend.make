# Empty dependencies file for iq_vafile.
# This may be replaced when dependencies are built.
