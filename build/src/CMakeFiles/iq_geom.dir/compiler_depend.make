# Empty compiler generated dependencies file for iq_geom.
# This may be replaced when dependencies are built.
