file(REMOVE_RECURSE
  "CMakeFiles/iq_geom.dir/geom/mbr.cc.o"
  "CMakeFiles/iq_geom.dir/geom/mbr.cc.o.d"
  "CMakeFiles/iq_geom.dir/geom/metrics.cc.o"
  "CMakeFiles/iq_geom.dir/geom/metrics.cc.o.d"
  "CMakeFiles/iq_geom.dir/geom/volumes.cc.o"
  "CMakeFiles/iq_geom.dir/geom/volumes.cc.o.d"
  "libiq_geom.a"
  "libiq_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
