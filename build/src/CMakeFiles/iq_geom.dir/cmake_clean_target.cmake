file(REMOVE_RECURSE
  "libiq_geom.a"
)
