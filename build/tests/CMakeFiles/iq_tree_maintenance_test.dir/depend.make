# Empty dependencies file for iq_tree_maintenance_test.
# This may be replaced when dependencies are built.
