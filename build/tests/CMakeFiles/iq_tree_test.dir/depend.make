# Empty dependencies file for iq_tree_test.
# This may be replaced when dependencies are built.
