file(REMOVE_RECURSE
  "CMakeFiles/iq_tree_test.dir/iq_tree_test.cc.o"
  "CMakeFiles/iq_tree_test.dir/iq_tree_test.cc.o.d"
  "iq_tree_test"
  "iq_tree_test.pdb"
  "iq_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
