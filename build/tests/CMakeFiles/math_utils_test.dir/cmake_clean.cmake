file(REMOVE_RECURSE
  "CMakeFiles/math_utils_test.dir/math_utils_test.cc.o"
  "CMakeFiles/math_utils_test.dir/math_utils_test.cc.o.d"
  "math_utils_test"
  "math_utils_test.pdb"
  "math_utils_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
