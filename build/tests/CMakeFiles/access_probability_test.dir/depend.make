# Empty dependencies file for access_probability_test.
# This may be replaced when dependencies are built.
