file(REMOVE_RECURSE
  "CMakeFiles/access_probability_test.dir/access_probability_test.cc.o"
  "CMakeFiles/access_probability_test.dir/access_probability_test.cc.o.d"
  "access_probability_test"
  "access_probability_test.pdb"
  "access_probability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_probability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
