# Empty compiler generated dependencies file for b_plus_tree_test.
# This may be replaced when dependencies are built.
