file(REMOVE_RECURSE
  "CMakeFiles/b_plus_tree_test.dir/b_plus_tree_test.cc.o"
  "CMakeFiles/b_plus_tree_test.dir/b_plus_tree_test.cc.o.d"
  "b_plus_tree_test"
  "b_plus_tree_test.pdb"
  "b_plus_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b_plus_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
