file(REMOVE_RECURSE
  "CMakeFiles/decoder_robustness_test.dir/decoder_robustness_test.cc.o"
  "CMakeFiles/decoder_robustness_test.dir/decoder_robustness_test.cc.o.d"
  "decoder_robustness_test"
  "decoder_robustness_test.pdb"
  "decoder_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
