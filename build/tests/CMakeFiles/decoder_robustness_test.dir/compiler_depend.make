# Empty compiler generated dependencies file for decoder_robustness_test.
# This may be replaced when dependencies are built.
