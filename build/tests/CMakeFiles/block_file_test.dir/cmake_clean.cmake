file(REMOVE_RECURSE
  "CMakeFiles/block_file_test.dir/block_file_test.cc.o"
  "CMakeFiles/block_file_test.dir/block_file_test.cc.o.d"
  "block_file_test"
  "block_file_test.pdb"
  "block_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
