# Empty dependencies file for block_file_test.
# This may be replaced when dependencies are built.
