# Empty compiler generated dependencies file for iq_tree_search_test.
# This may be replaced when dependencies are built.
