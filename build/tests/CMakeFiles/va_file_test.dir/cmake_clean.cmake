file(REMOVE_RECURSE
  "CMakeFiles/va_file_test.dir/va_file_test.cc.o"
  "CMakeFiles/va_file_test.dir/va_file_test.cc.o.d"
  "va_file_test"
  "va_file_test.pdb"
  "va_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/va_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
