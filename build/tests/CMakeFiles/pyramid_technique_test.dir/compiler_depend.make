# Empty compiler generated dependencies file for pyramid_technique_test.
# This may be replaced when dependencies are built.
