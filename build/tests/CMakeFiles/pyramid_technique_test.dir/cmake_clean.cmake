file(REMOVE_RECURSE
  "CMakeFiles/pyramid_technique_test.dir/pyramid_technique_test.cc.o"
  "CMakeFiles/pyramid_technique_test.dir/pyramid_technique_test.cc.o.d"
  "pyramid_technique_test"
  "pyramid_technique_test.pdb"
  "pyramid_technique_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyramid_technique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
