file(REMOVE_RECURSE
  "CMakeFiles/extent_file_test.dir/extent_file_test.cc.o"
  "CMakeFiles/extent_file_test.dir/extent_file_test.cc.o.d"
  "extent_file_test"
  "extent_file_test.pdb"
  "extent_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extent_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
