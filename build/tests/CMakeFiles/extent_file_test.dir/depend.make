# Empty dependencies file for extent_file_test.
# This may be replaced when dependencies are built.
