file(REMOVE_RECURSE
  "CMakeFiles/search_correctness_test.dir/search_correctness_test.cc.o"
  "CMakeFiles/search_correctness_test.dir/search_correctness_test.cc.o.d"
  "search_correctness_test"
  "search_correctness_test.pdb"
  "search_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
