# Empty dependencies file for volumes_test.
# This may be replaced when dependencies are built.
