file(REMOVE_RECURSE
  "CMakeFiles/volumes_test.dir/volumes_test.cc.o"
  "CMakeFiles/volumes_test.dir/volumes_test.cc.o.d"
  "volumes_test"
  "volumes_test.pdb"
  "volumes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volumes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
