# Empty compiler generated dependencies file for fetch_plan_test.
# This may be replaced when dependencies are built.
