file(REMOVE_RECURSE
  "CMakeFiles/fetch_plan_test.dir/fetch_plan_test.cc.o"
  "CMakeFiles/fetch_plan_test.dir/fetch_plan_test.cc.o.d"
  "fetch_plan_test"
  "fetch_plan_test.pdb"
  "fetch_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fetch_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
