file(REMOVE_RECURSE
  "CMakeFiles/r_star_tree_test.dir/r_star_tree_test.cc.o"
  "CMakeFiles/r_star_tree_test.dir/r_star_tree_test.cc.o.d"
  "r_star_tree_test"
  "r_star_tree_test.pdb"
  "r_star_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r_star_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
