# Empty dependencies file for r_star_tree_test.
# This may be replaced when dependencies are built.
