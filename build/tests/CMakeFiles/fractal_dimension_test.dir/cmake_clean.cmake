file(REMOVE_RECURSE
  "CMakeFiles/fractal_dimension_test.dir/fractal_dimension_test.cc.o"
  "CMakeFiles/fractal_dimension_test.dir/fractal_dimension_test.cc.o.d"
  "fractal_dimension_test"
  "fractal_dimension_test.pdb"
  "fractal_dimension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractal_dimension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
