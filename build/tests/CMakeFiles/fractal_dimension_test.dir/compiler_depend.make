# Empty compiler generated dependencies file for fractal_dimension_test.
# This may be replaced when dependencies are built.
