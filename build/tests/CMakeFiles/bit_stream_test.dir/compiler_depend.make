# Empty compiler generated dependencies file for bit_stream_test.
# This may be replaced when dependencies are built.
