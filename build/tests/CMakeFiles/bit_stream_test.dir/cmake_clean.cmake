file(REMOVE_RECURSE
  "CMakeFiles/bit_stream_test.dir/bit_stream_test.cc.o"
  "CMakeFiles/bit_stream_test.dir/bit_stream_test.cc.o.d"
  "bit_stream_test"
  "bit_stream_test.pdb"
  "bit_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
