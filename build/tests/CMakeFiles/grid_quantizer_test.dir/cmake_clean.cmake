file(REMOVE_RECURSE
  "CMakeFiles/grid_quantizer_test.dir/grid_quantizer_test.cc.o"
  "CMakeFiles/grid_quantizer_test.dir/grid_quantizer_test.cc.o.d"
  "grid_quantizer_test"
  "grid_quantizer_test.pdb"
  "grid_quantizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_quantizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
