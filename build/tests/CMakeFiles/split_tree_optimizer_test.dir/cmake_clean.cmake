file(REMOVE_RECURSE
  "CMakeFiles/split_tree_optimizer_test.dir/split_tree_optimizer_test.cc.o"
  "CMakeFiles/split_tree_optimizer_test.dir/split_tree_optimizer_test.cc.o.d"
  "split_tree_optimizer_test"
  "split_tree_optimizer_test.pdb"
  "split_tree_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_tree_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
