# Empty compiler generated dependencies file for split_tree_optimizer_test.
# This may be replaced when dependencies are built.
