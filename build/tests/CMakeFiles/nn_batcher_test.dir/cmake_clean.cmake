file(REMOVE_RECURSE
  "CMakeFiles/nn_batcher_test.dir/nn_batcher_test.cc.o"
  "CMakeFiles/nn_batcher_test.dir/nn_batcher_test.cc.o.d"
  "nn_batcher_test"
  "nn_batcher_test.pdb"
  "nn_batcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_batcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
