# Empty compiler generated dependencies file for nn_batcher_test.
# This may be replaced when dependencies are built.
