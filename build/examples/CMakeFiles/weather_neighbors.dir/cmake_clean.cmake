file(REMOVE_RECURSE
  "CMakeFiles/weather_neighbors.dir/weather_neighbors.cpp.o"
  "CMakeFiles/weather_neighbors.dir/weather_neighbors.cpp.o.d"
  "weather_neighbors"
  "weather_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
