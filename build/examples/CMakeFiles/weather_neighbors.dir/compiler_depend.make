# Empty compiler generated dependencies file for weather_neighbors.
# This may be replaced when dependencies are built.
