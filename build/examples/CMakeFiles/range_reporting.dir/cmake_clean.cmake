file(REMOVE_RECURSE
  "CMakeFiles/range_reporting.dir/range_reporting.cpp.o"
  "CMakeFiles/range_reporting.dir/range_reporting.cpp.o.d"
  "range_reporting"
  "range_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
