# Empty compiler generated dependencies file for range_reporting.
# This may be replaced when dependencies are built.
