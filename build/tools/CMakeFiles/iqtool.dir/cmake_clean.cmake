file(REMOVE_RECURSE
  "CMakeFiles/iqtool.dir/iqtool.cc.o"
  "CMakeFiles/iqtool.dir/iqtool.cc.o.d"
  "iqtool"
  "iqtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iqtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
