# Empty dependencies file for iqtool.
# This may be replaced when dependencies are built.
