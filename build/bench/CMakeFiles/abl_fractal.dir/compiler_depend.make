# Empty compiler generated dependencies file for abl_fractal.
# This may be replaced when dependencies are built.
