file(REMOVE_RECURSE
  "CMakeFiles/abl_fractal.dir/abl_fractal.cc.o"
  "CMakeFiles/abl_fractal.dir/abl_fractal.cc.o.d"
  "abl_fractal"
  "abl_fractal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fractal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
