# Empty dependencies file for fig09_uniform_size.
# This may be replaced when dependencies are built.
