file(REMOVE_RECURSE
  "CMakeFiles/fig09_uniform_size.dir/fig09_uniform_size.cc.o"
  "CMakeFiles/fig09_uniform_size.dir/fig09_uniform_size.cc.o.d"
  "fig09_uniform_size"
  "fig09_uniform_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_uniform_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
