# Empty compiler generated dependencies file for fig07_concepts.
# This may be replaced when dependencies are built.
