file(REMOVE_RECURSE
  "CMakeFiles/fig07_concepts.dir/fig07_concepts.cc.o"
  "CMakeFiles/fig07_concepts.dir/fig07_concepts.cc.o.d"
  "fig07_concepts"
  "fig07_concepts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_concepts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
