file(REMOVE_RECURSE
  "CMakeFiles/fig08_uniform_dim.dir/fig08_uniform_dim.cc.o"
  "CMakeFiles/fig08_uniform_dim.dir/fig08_uniform_dim.cc.o.d"
  "fig08_uniform_dim"
  "fig08_uniform_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_uniform_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
