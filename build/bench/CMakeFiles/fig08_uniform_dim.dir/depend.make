# Empty dependencies file for fig08_uniform_dim.
# This may be replaced when dependencies are built.
