# Empty dependencies file for abl_pyramid.
# This may be replaced when dependencies are built.
