file(REMOVE_RECURSE
  "CMakeFiles/abl_pyramid.dir/abl_pyramid.cc.o"
  "CMakeFiles/abl_pyramid.dir/abl_pyramid.cc.o.d"
  "abl_pyramid"
  "abl_pyramid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pyramid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
