file(REMOVE_RECURSE
  "CMakeFiles/fig12_weather.dir/fig12_weather.cc.o"
  "CMakeFiles/fig12_weather.dir/fig12_weather.cc.o.d"
  "fig12_weather"
  "fig12_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
