# Empty dependencies file for fig12_weather.
# This may be replaced when dependencies are built.
