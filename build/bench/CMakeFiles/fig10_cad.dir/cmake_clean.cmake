file(REMOVE_RECURSE
  "CMakeFiles/fig10_cad.dir/fig10_cad.cc.o"
  "CMakeFiles/fig10_cad.dir/fig10_cad.cc.o.d"
  "fig10_cad"
  "fig10_cad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
