# Empty compiler generated dependencies file for fig10_cad.
# This may be replaced when dependencies are built.
