# Empty dependencies file for abl_disk_params.
# This may be replaced when dependencies are built.
