file(REMOVE_RECURSE
  "CMakeFiles/abl_disk_params.dir/abl_disk_params.cc.o"
  "CMakeFiles/abl_disk_params.dir/abl_disk_params.cc.o.d"
  "abl_disk_params"
  "abl_disk_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_disk_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
