file(REMOVE_RECURSE
  "CMakeFiles/fig11_color.dir/fig11_color.cc.o"
  "CMakeFiles/fig11_color.dir/fig11_color.cc.o.d"
  "fig11_color"
  "fig11_color.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_color.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
