# Empty compiler generated dependencies file for fig11_color.
# This may be replaced when dependencies are built.
