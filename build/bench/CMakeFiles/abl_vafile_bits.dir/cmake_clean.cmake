file(REMOVE_RECURSE
  "CMakeFiles/abl_vafile_bits.dir/abl_vafile_bits.cc.o"
  "CMakeFiles/abl_vafile_bits.dir/abl_vafile_bits.cc.o.d"
  "abl_vafile_bits"
  "abl_vafile_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vafile_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
