# Empty dependencies file for abl_vafile_bits.
# This may be replaced when dependencies are built.
