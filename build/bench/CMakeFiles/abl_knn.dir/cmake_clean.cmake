file(REMOVE_RECURSE
  "CMakeFiles/abl_knn.dir/abl_knn.cc.o"
  "CMakeFiles/abl_knn.dir/abl_knn.cc.o.d"
  "abl_knn"
  "abl_knn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_knn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
