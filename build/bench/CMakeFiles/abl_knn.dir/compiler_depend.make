# Empty compiler generated dependencies file for abl_knn.
# This may be replaced when dependencies are built.
