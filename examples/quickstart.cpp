// Quickstart: build an IQ-tree over synthetic data, run the three query
// types, and inspect the simulated I/O cost of each.

#include <cstdio>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"

int main() {
  using namespace iq;

  // 1. A workload: 20,000 uniformly distributed 16-d points, plus a few
  //    query points drawn from the same distribution.
  Dataset data = GenerateUniform(20005, 16, /*seed=*/42);
  const Dataset queries = data.TakeTail(5);

  // 2. Storage + disk model. MemoryStorage keeps the index in RAM while
  //    the DiskModel charges 1990s-disk timings for every page access,
  //    so query times are comparable with the paper's figures.
  MemoryStorage storage;
  DiskModel disk;  // 10 ms seek, 2 ms / 8 KiB block

  // 3. Build. The builder estimates the fractal dimension, bulk-loads
  //    1-bit pages and runs the optimal-quantization algorithm.
  auto tree = IqTree::Build(data, storage, "quickstart", disk, {});
  if (!tree.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  const auto& stats = (*tree)->build_stats();
  std::printf("built IQ-tree: %zu pages over %llu points, D_F=%.2f\n",
              stats.num_pages,
              static_cast<unsigned long long>((*tree)->size()),
              stats.fractal_dimension);
  std::printf("pages per quantization level (1,2,4,8,16,32 bits):");
  for (size_t count : stats.pages_per_level) std::printf(" %zu", count);
  std::printf("\nmodel-predicted query cost: %.4f s\n\n",
              stats.expected_query_cost_s);

  // 4. Queries. Every result is exact; the compressed level only saves
  //    I/O, never accuracy.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    disk.ResetStats();
    auto nn = (*tree)->NearestNeighbor(queries[qi]);
    if (!nn.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   nn.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "query %zu: nearest neighbor id=%u dist=%.4f   "
        "(%.4f simulated s, %llu seeks, %llu blocks)\n",
        qi, nn->id, nn->distance, disk.stats().io_time_s,
        static_cast<unsigned long long>(disk.stats().seeks),
        static_cast<unsigned long long>(disk.stats().blocks_read));
  }

  // 5. k-NN and range queries share the machinery.
  auto top5 = (*tree)->KNearestNeighbors(queries[0], 5);
  if (top5.ok()) {
    std::printf("\ntop-5 of query 0:");
    for (const Neighbor& r : *top5) {
      std::printf(" (%u, %.4f)", r.id, r.distance);
    }
    std::printf("\n");
  }
  auto in_range = (*tree)->RangeSearch(queries[0], 0.9);
  if (in_range.ok()) {
    std::printf("points within distance 0.9 of query 0: %zu\n",
                in_range->size());
  }
  return 0;
}
