// Content-based image retrieval, the paper's COLOR motivation: color
// histograms are high-dimensional, only slightly clustered vectors —
// exactly where classic trees collapse to a slow scan. This example
// builds an IQ-tree and a VA-file over synthetic 16-bin histograms,
// runs "find the 10 most similar images" queries, and compares the
// simulated I/O cost.

#include <cstdio>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"
#include "vafile/va_file.h"

int main() {
  using namespace iq;
  const size_t kImages = 40000;
  const size_t kBins = 16;

  Dataset histograms = GenerateColorLike(kImages + 3, kBins, 7);
  const Dataset query_images = histograms.TakeTail(3);

  MemoryStorage storage;
  DiskModel disk;

  auto tree = IqTree::Build(histograms, storage, "images", disk, {});
  VaFile::Options va_options;
  va_options.bits_per_dim = 6;
  auto va = VaFile::Build(histograms, storage, "images_va", disk,
                          va_options);
  if (!tree.ok() || !va.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  std::printf("indexed %zu histograms (%zu bins); IQ-tree has %zu pages, "
              "D_F=%.2f\n\n",
              kImages, kBins, (*tree)->num_pages(),
              (*tree)->fractal_dimension());

  for (size_t qi = 0; qi < query_images.size(); ++qi) {
    disk.ResetStats();
    disk.InvalidateHead();
    auto iq_results = (*tree)->KNearestNeighbors(query_images[qi], 10);
    const double iq_time = disk.stats().io_time_s;

    disk.ResetStats();
    disk.InvalidateHead();
    auto va_results = (*va)->KNearestNeighbors(query_images[qi], 10);
    const double va_time = disk.stats().io_time_s;

    if (!iq_results.ok() || !va_results.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    std::printf("query image %zu:\n", qi);
    std::printf("  best matches (id, distance):");
    for (size_t i = 0; i < 3; ++i) {
      std::printf(" (%u, %.4f)", (*iq_results)[i].id,
                  (*iq_results)[i].distance);
    }
    std::printf("\n  IQ-tree: %.4f s   VA-file: %.4f s   (both exact; "
                "answers agree: %s)\n",
                iq_time, va_time,
                (*iq_results)[0].distance == (*va_results)[0].distance
                    ? "yes"
                    : "no");
  }
  return 0;
}
