// Index tuning walkthrough: how the cost model, the fractal dimension
// and the disk parameters interact. Compares the optimizer's chosen
// solution against fixed quantization rates on a correlated workload,
// and shows what the cost model predicted versus what the simulated
// disk measured — the workflow a practitioner would use to validate the
// model on their own data.

#include <cstdio>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "fractal/fractal_dimension.h"
#include "harness/experiment.h"
#include "io/storage.h"

int main() {
  using namespace iq;
  const size_t kPoints = 30000;
  const size_t kDims = 16;
  const size_t kQueries = 20;

  Dataset data = GenerateCadLike(kPoints + kQueries, kDims, 21);
  const Dataset queries = data.TakeTail(kQueries);

  const FractalEstimate fractal =
      EstimateCorrelationDimension(data.data(), data.size(), kDims);
  std::printf("workload: CAD-like, %zu points, %zu dims\n", kPoints, kDims);
  std::printf("estimated correlation dimension D_F = %.2f (fit r^2 = "
              "%.3f over %u scales)\n\n",
              fractal.dimension, fractal.fit_r2, fractal.levels_used);

  const DiskParameters disk;
  Experiment experiment(data, queries, disk);

  std::printf("%-22s %14s\n", "configuration", "avg query (s)");
  for (unsigned g : {1u, 4u, 16u, 32u}) {
    auto fixed = experiment.RunIqTree(true, true, g);
    if (!fixed.ok()) return 1;
    std::printf("fixed g = %-14u %14.4f\n", g, fixed->avg_query_time_s);
  }
  auto optimal = experiment.RunIqTree();
  if (!optimal.ok()) return 1;
  std::printf("%-22s %14.4f\n", "cost-model optimal",
              optimal->avg_query_time_s);

  // Model prediction vs measurement for the optimal build.
  MemoryStorage storage;
  DiskModel disk_model(disk);
  auto tree = IqTree::Build(data, storage, "tuned", disk_model, {});
  if (!tree.ok()) return 1;
  disk_model.ResetStats();
  disk_model.InvalidateHead();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!(*tree)->NearestNeighbor(queries[qi]).ok()) return 1;
    disk_model.InvalidateHead();
  }
  const double measured =
      disk_model.stats().io_time_s / static_cast<double>(queries.size());
  std::printf(
      "\ncost model predicted %.4f s/query; simulated disk measured "
      "%.4f s/query\n",
      (*tree)->build_stats().expected_query_cost_s, measured);
  std::printf("pages per level (g = 1,2,4,8,16,32):");
  for (size_t count : (*tree)->build_stats().pages_per_level) {
    std::printf(" %zu", count);
  }
  std::printf("\n");
  return 0;
}
