// Weather-station similarity search with dynamic updates: the paper's
// WEATHER workload (9-d, highly clustered, low fractal dimension). The
// example bulk-loads an IQ-tree, then streams in new measurements with
// Insert, retires old ones with Remove, and keeps answering "find
// stations with the most similar conditions" between batches.

#include <cstdio>
#include <vector>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"

int main() {
  using namespace iq;
  const size_t kInitial = 30000;
  const size_t kStream = 2000;
  const size_t kDims = 9;

  Dataset initial = GenerateWeatherLike(kInitial, kDims, 11);
  const Dataset stream = GenerateWeatherLike(kStream, kDims, 12);
  const Dataset probes = GenerateWeatherLike(3, kDims, 13);

  MemoryStorage storage;
  DiskModel disk;
  auto tree = IqTree::Build(initial, storage, "weather", disk, {});
  if (!tree.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  std::printf("bulk-loaded %zu measurements, %zu pages, D_F=%.2f "
              "(low: the data lives near a 3-d manifold)\n\n",
              kInitial, (*tree)->num_pages(),
              (*tree)->fractal_dimension());

  auto report = [&](const char* label) {
    for (size_t qi = 0; qi < probes.size(); ++qi) {
      disk.ResetStats();
      auto knn = (*tree)->KNearestNeighbors(probes[qi], 5);
      if (!knn.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     knn.status().ToString().c_str());
        std::exit(1);
      }
      std::printf("  [%s] probe %zu: closest station id=%u dist=%.4f "
                  "(%.4f simulated s)\n",
                  label, qi, (*knn)[0].id, (*knn)[0].distance,
                  disk.stats().io_time_s);
    }
  };

  report("initial");

  // Stream in new measurements.
  for (size_t i = 0; i < stream.size(); ++i) {
    const PointId id = static_cast<PointId>(kInitial + i);
    if (Status s = (*tree)->Insert(id, stream[i]); !s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nafter %zu inserts (%llu points, %zu pages):\n", kStream,
              static_cast<unsigned long long>((*tree)->size()),
              (*tree)->num_pages());
  report("after inserts");

  // Retire the first 1000 original measurements.
  for (size_t i = 0; i < 1000; ++i) {
    if (Status s = (*tree)->Remove(static_cast<PointId>(i), initial[i]);
        !s.ok()) {
      std::fprintf(stderr, "remove failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("\nafter 1000 removals (%llu points, %zu pages):\n",
              static_cast<unsigned long long>((*tree)->size()),
              (*tree)->num_pages());
  report("after removals");

  // Persist the updated directory.
  if (Status s = (*tree)->Flush(); !s.ok()) {
    std::fprintf(stderr, "flush failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\ndirectory flushed; index can be reopened with "
              "IqTree::Open.\n");
  return 0;
}
