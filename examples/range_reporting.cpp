// Range reporting across all five structures: "find every measurement
// inside this box / this radius" — the workload where the structures'
// characters differ the most. All answers are exact and identical; only
// the simulated I/O cost differs.

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"
#include "pyramid/pyramid_technique.h"
#include "vafile/va_file.h"
#include "xtree/x_tree.h"

int main() {
  using namespace iq;
  const size_t kPoints = 30000;
  const size_t kDims = 9;

  Dataset data = GenerateWeatherLike(kPoints + 2, kDims, 31);
  const Dataset probes = data.TakeTail(2);

  MemoryStorage storage;
  DiskModel disk;

  auto iq_tree = IqTree::Build(data, storage, "iq", disk, {});
  auto x_tree = XTree::Build(data, storage, "x", disk, {});
  auto pyramid = PyramidTechnique::Build(data, storage, "p", disk, {});
  VaFile::Options va_options;
  va_options.bits_per_dim = 6;
  auto va = VaFile::Build(data, storage, "va", disk, va_options);
  if (!iq_tree.ok() || !x_tree.ok() || !pyramid.ok() || !va.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  std::printf("indexed %zu 9-d weather measurements in 4 structures\n\n",
              kPoints);

  auto timed = [&](auto&& fn) {
    disk.ResetStats();
    disk.InvalidateHead();
    auto result = fn();
    return std::make_pair(std::move(result), disk.stats().io_time_s);
  };

  for (size_t pi = 0; pi < probes.size(); ++pi) {
    // A window around the probe: "conditions similar in every variable".
    std::vector<float> lb(kDims), ub(kDims);
    for (size_t j = 0; j < kDims; ++j) {
      lb[j] = std::max(0.0f, probes[pi][j] - 0.08f);
      ub[j] = std::min(1.0f, probes[pi][j] + 0.08f);
    }
    const Mbr window = Mbr::FromBounds(lb, ub);

    auto [iq_ids, iq_time] =
        timed([&] { return (*iq_tree)->WindowQuery(window); });
    auto [x_ids, x_time] =
        timed([&] { return (*x_tree)->WindowQuery(window); });
    auto [p_ids, p_time] =
        timed([&] { return (*pyramid)->WindowQuery(window); });
    auto [va_ids, va_time] =
        timed([&] { return (*va)->WindowQuery(window); });
    if (!iq_ids.ok() || !x_ids.ok() || !p_ids.ok() || !va_ids.ok()) {
      std::fprintf(stderr, "window query failed\n");
      return 1;
    }
    const std::set<PointId> reference(iq_ids->begin(), iq_ids->end());
    const bool agree =
        reference == std::set<PointId>(x_ids->begin(), x_ids->end()) &&
        reference == std::set<PointId>(p_ids->begin(), p_ids->end()) &&
        reference == std::set<PointId>(va_ids->begin(), va_ids->end());
    std::printf("window probe %zu: %zu hits (all structures agree: %s)\n",
                pi, reference.size(), agree ? "yes" : "NO");
    std::printf("  IQ-tree %.4fs | X-tree %.4fs | Pyramid %.4fs | "
                "VA-file %.4fs\n",
                iq_time, x_time, p_time, va_time);

    // The same neighborhood as a metric ball.
    auto [iq_ball, ball_time] =
        timed([&] { return (*iq_tree)->RangeSearch(probes[pi], 0.1); });
    if (!iq_ball.ok()) return 1;
    std::printf("  ball r=0.1 via IQ-tree: %zu hits in %.4fs\n\n",
                iq_ball->size(), ball_time);
  }
  return 0;
}
