// Churn bit-identity: a tree that lives through interleaved inserts,
// removes, maintenance rounds, and a Reoptimize must answer exactly —
// bit-identical distances — like a tree freshly built over the same
// final point set. The simulated DiskModel makes every run
// deterministic, so any drift here is a real correctness bug in the
// dynamic-maintenance paths.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "maint/maintenance_scheduler.h"

namespace iq {
namespace {

class MaintenanceChurnTest : public ::testing::Test {
 protected:
  MaintenanceChurnTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  /// (distance, id) answer list of a kNN query, the comparison unit.
  std::vector<std::pair<double, PointId>> Answer(const IqTree& tree,
                                                 PointView q, size_t k) {
    auto result = tree.KNearestNeighbors(q, k);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::pair<double, PointId>> out;
    if (result.ok()) {
      for (const Neighbor& n : *result) out.emplace_back(n.distance, n.id);
      // Ties can legitimately order differently across layouts; compare
      // as sorted sets.
      std::sort(out.begin(), out.end());
    }
    return out;
  }

  DiskModel disk_;
};

TEST_F(MaintenanceChurnTest, ChurnedTreeMatchesFreshBuildBitForBit) {
  const size_t kDims = 6;
  const Dataset all = GenerateCadLike(6000, kDims, 17);
  const Dataset extra = GenerateUniform(400, kDims, 18);
  const Dataset queries = GenerateCadLike(25, kDims, 19);

  // The churned tree: build over the first 5000 points, then interleave
  // inserts of the rest, removes of every 7th initial point, scheduler
  // rounds fed by a skewed workload, and one Reoptimize.
  MemoryStorage churn_storage;
  DiskModel churn_disk(disk_.params());
  Dataset initial(kDims);
  for (size_t i = 0; i < 5000; ++i) initial.Append(all[i]);
  auto tree = IqTree::Build(initial, churn_storage, "t", churn_disk, {});
  ASSERT_TRUE(tree.ok());

  obs::PageStatsCollector collector;
  maint::MaintenanceScheduler::Options options;
  options.policy.min_queries = 8;
  maint::MaintenanceScheduler scheduler(tree->get(), &collector, options);

  IqSearchOptions telemetry;
  telemetry.page_stats = &collector;
  size_t next_insert = 5000;
  size_t next_remove = 0;
  for (size_t phase = 0; phase < 5; ++phase) {
    for (size_t i = 0; i < 200 && next_insert < all.size(); ++i) {
      ASSERT_TRUE(
          (*tree)->Insert(static_cast<PointId>(next_insert), all[next_insert])
              .ok());
      ++next_insert;
    }
    for (size_t i = 0; i < 40; ++i, next_remove += 7) {
      ASSERT_TRUE((*tree)->Remove(static_cast<PointId>(next_remove),
                                  all[next_remove])
                      .ok());
    }
    // A skewed telemetry batch, then one maintenance round (classic
    // updates and maintenance stay serialized, per the tier contract).
    for (size_t i = 0; i < 12; ++i) {
      ASSERT_TRUE((*tree)->KNearestNeighbors(all[100 + i], 3, telemetry).ok());
    }
    auto round = scheduler.RunRound();
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    if (phase == 2) {
      ASSERT_TRUE((*tree)->Reoptimize().ok());
    }
  }
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        (*tree)->Insert(static_cast<PointId>(10000 + i), extra[i]).ok());
  }
  ASSERT_TRUE((*tree)->Flush().ok());

  // The reference: a fresh build over exactly the surviving points.
  Dataset survivors(kDims);
  std::vector<PointId> survivor_ids;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i < next_remove && i % 7 == 0) continue;  // removed
    survivors.Append(all[i]);
    survivor_ids.push_back(static_cast<PointId>(i));
  }
  for (size_t i = 0; i < extra.size(); ++i) {
    survivors.Append(extra[i]);
    survivor_ids.push_back(static_cast<PointId>(10000 + i));
  }
  ASSERT_EQ((*tree)->size(), survivors.size());

  MemoryStorage fresh_storage;
  DiskModel fresh_disk(disk_.params());
  auto fresh = IqTree::Build(survivors, fresh_storage, "f", fresh_disk, {});
  ASSERT_TRUE(fresh.ok());
  // The fresh build numbers points 0..n-1 by position; translate its
  // answers back through survivor_ids before comparing.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto got = Answer(**tree, queries[qi], 5);
    auto want = Answer(**fresh, queries[qi], 5);
    for (auto& [dist, id] : want) id = survivor_ids[id];
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got.size(), want.size()) << "query " << qi;
    for (size_t i = 0; i < got.size(); ++i) {
      // Bit-identical distances: same floats, not just nearby ones.
      EXPECT_EQ(got[i].first, want[i].first) << "query " << qi;
      EXPECT_EQ(got[i].second, want[i].second) << "query " << qi;
    }
  }

  // And the churned tree survives a reopen with identical answers.
  auto reopened = IqTree::Open(churn_storage, "t", churn_disk);
  ASSERT_TRUE(reopened.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(Answer(**reopened, queries[qi], 5),
              Answer(**tree, queries[qi], 5))
        << "query " << qi;
  }
}

}  // namespace
}  // namespace iq
