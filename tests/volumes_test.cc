#include "geom/volumes.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace iq {
namespace {

TEST(SphereVolumeTest, KnownValues) {
  // V_1 = 2r, V_2 = pi r^2, V_3 = 4/3 pi r^3.
  EXPECT_NEAR(SphereVolume(1, 1.0), 2.0, 1e-9);
  EXPECT_NEAR(SphereVolume(2, 1.0), M_PI, 1e-9);
  EXPECT_NEAR(SphereVolume(3, 1.0), 4.0 / 3.0 * M_PI, 1e-9);
  EXPECT_NEAR(SphereVolume(2, 2.0), 4.0 * M_PI, 1e-9);
  EXPECT_EQ(SphereVolume(3, 0.0), 0.0);
}

TEST(SphereVolumeTest, HighDimensionStaysFinite) {
  // The unit ball volume vanishes with d but must not over/underflow.
  const double v16 = SphereVolume(16, 1.0);
  EXPECT_GT(v16, 0.0);
  EXPECT_LT(v16, SphereVolume(5, 1.0));
  EXPECT_TRUE(std::isfinite(SphereVolume(100, 0.5)));
}

TEST(CubeVolumeTest, KnownValues) {
  EXPECT_NEAR(CubeVolume(3, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(CubeVolume(2, 1.0), 4.0, 1e-12);
}

class BallRadiusRoundTrip : public ::testing::TestWithParam<Metric> {};

TEST_P(BallRadiusRoundTrip, InvertsBallVolume) {
  const Metric metric = GetParam();
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t d = 1 + rng.Index(16);
    const double r = rng.Uniform(0.01, 2.0);
    const double v = BallVolume(d, r, metric);
    EXPECT_NEAR(BallRadiusForVolume(d, v, metric), r, 1e-6 * r)
        << "d=" << d << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, BallRadiusRoundTrip,
                         ::testing::Values(Metric::kL2, Metric::kLMax));

TEST(MinkowskiSumTest, LMaxExactFormula) {
  // Paper eq. 11: prod (s_i + 2r).
  std::vector<double> sides{1.0, 2.0};
  EXPECT_NEAR(MinkowskiSumVolume(sides, 0.5, Metric::kLMax),
              2.0 * 3.0, 1e-12);
  // r = 0 degenerates to the box volume.
  EXPECT_NEAR(MinkowskiSumVolume(sides, 0.0, Metric::kLMax), 2.0, 1e-12);
}

TEST(MinkowskiSumTest, L2LimitsMatch) {
  // r -> 0: the box volume. side -> 0: the ball volume.
  std::vector<double> sides{0.3, 0.3, 0.3};
  EXPECT_NEAR(MinkowskiSumVolume(sides, 0.0, Metric::kL2), 0.027, 1e-9);
  const double tiny = MinkowskiSumVolume(3, 1e-9, 0.2, Metric::kL2);
  EXPECT_NEAR(tiny, SphereVolume(3, 0.2), 1e-4);
}

TEST(MinkowskiSumTest, L2MonteCarloCube) {
  // Monte-Carlo check of eq. 12 for an exact cube (where the geometric
  // mean introduces no additional error): fraction of points within
  // distance r of the cube [0,s]^2.
  const double s = 0.4, r = 0.2;
  Rng rng(11);
  const int samples = 200000;
  int hits = 0;
  // Sample over the bounding box of the Minkowski body.
  const double lo = -r, hi = s + r;
  for (int i = 0; i < samples; ++i) {
    const double x = rng.Uniform(lo, hi);
    const double y = rng.Uniform(lo, hi);
    const double dx = x < 0 ? -x : (x > s ? x - s : 0);
    const double dy = y < 0 ? -y : (y > s ? y - s : 0);
    if (dx * dx + dy * dy <= r * r) ++hits;
  }
  const double mc =
      (hi - lo) * (hi - lo) * static_cast<double>(hits) / samples;
  const double formula =
      MinkowskiSumVolume(2, s, r, Metric::kL2);
  EXPECT_NEAR(formula, mc, 0.02 * mc);
}

TEST(MinkowskiSumTest, MonotoneInRadius) {
  std::vector<double> sides{0.1, 0.2, 0.4, 0.05};
  double prev = 0.0;
  for (double r = 0.0; r <= 1.0; r += 0.1) {
    const double v_l2 = MinkowskiSumVolume(sides, r, Metric::kL2);
    EXPECT_GE(v_l2, prev);
    prev = v_l2;
  }
}

}  // namespace
}  // namespace iq
