#include "io/extent_file.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace iq {
namespace {

class ExtentFileTest : public ::testing::Test {
 protected:
  ExtentFileTest() : disk_(DiskParameters{0.010, 0.002, 4096}) {}

  std::unique_ptr<ExtentFile> Make() {
    auto ef = std::make_unique<ExtentFile>();
    EXPECT_TRUE(ef->Open(storage_, "ef", disk_, /*create=*/true).ok());
    return ef;
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(ExtentFileTest, AppendReadRoundTrip) {
  auto ef = Make();
  const std::string a = "first extent";
  const std::string b = "second, longer extent with more bytes";
  auto ea = ef->Append(a.data(), a.size());
  auto eb = ef->Append(b.data(), b.size());
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->offset, 0u);
  EXPECT_EQ(eb->offset, a.size());
  std::string buf(b.size(), '\0');
  ASSERT_TRUE(ef->Read(*eb, buf.data()).ok());
  EXPECT_EQ(buf, b);
}

TEST_F(ExtentFileTest, ReadChargesSpannedBlocks) {
  auto ef = Make();
  std::vector<uint8_t> payload(10000, 7);  // spans 3 blocks of 4096
  auto extent = ef->Append(payload.data(), payload.size());
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(ef->BlocksSpanned(*extent), 3u);
  disk_.ResetStats();
  disk_.InvalidateHead();
  std::vector<uint8_t> buf(payload.size());
  ASSERT_TRUE(ef->Read(*extent, buf.data()).ok());
  EXPECT_EQ(disk_.stats().blocks_read, 3u);
  EXPECT_EQ(disk_.stats().seeks, 1u);
}

TEST_F(ExtentFileTest, ReadPastEndFails) {
  auto ef = Make();
  Extent bogus{100, 10};
  std::vector<uint8_t> buf(10);
  EXPECT_TRUE(ef->Read(bogus, buf.data()).IsOutOfRange());
}

TEST_F(ExtentFileTest, OverwriteInPlace) {
  auto ef = Make();
  const std::string a = "aaaaaaaa";
  auto extent = ef->Append(a.data(), a.size());
  ASSERT_TRUE(extent.ok());
  const std::string b = "bbbbbbbb";
  ASSERT_TRUE(ef->Overwrite(*extent, b.data()).ok());
  std::string buf(b.size(), '\0');
  ASSERT_TRUE(ef->Read(*extent, buf.data()).ok());
  EXPECT_EQ(buf, b);
}

TEST_F(ExtentFileTest, EmptyExtent) {
  auto ef = Make();
  auto extent = ef->Append(nullptr, 0);
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->length, 0u);
  EXPECT_EQ(ef->BlocksSpanned(*extent), 0u);
  EXPECT_TRUE(ef->Read(*extent, nullptr).ok());
}

}  // namespace
}  // namespace iq
