// Cost-model calibration telemetry: ObservedBreakdown must classify
// trace spans into the paper's T_1st/T_2nd/T_3rd components, the
// tracker must aggregate predicted-vs-observed error correctly, and —
// the regression contract — the model's predicted T_2nd/T_3rd must
// agree with the observed simulated I/O on uniform data within a
// documented factor (a perturbed model must fail the same check).

#include "obs/calibration.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"
#include "obs/trace.h"

namespace iq {
namespace {

using obs::CalibrationReport;
using obs::CalibrationTracker;
using obs::CostBreakdown;
using obs::ObservedBreakdown;
using obs::QueryTracer;
using obs::SpanRecord;

SpanRecord MakeSpan(const char* name, obs::SpanId parent, double io_s) {
  SpanRecord span;
  span.name = name;
  span.parent = parent;
  if (io_s >= 0) span.attrs.emplace_back("io_s", io_s);
  return span;
}

TEST(ObservedBreakdownTest, ClassifiesSpansByComponent) {
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan("knn", obs::kNoSpan, -1));     // 0: root
  spans.push_back(MakeSpan("dir_scan", 0, 0.5));          // t1
  spans.push_back(MakeSpan("batch", 0, 2.0));             // t2
  spans.push_back(MakeSpan("page", 2, 99.0));             // ignored
  spans.push_back(MakeSpan("refine", 0, 0.25));           // t3
  spans.push_back(MakeSpan("exact_page", 3, 0.125));      // t3
  const CostBreakdown observed = ObservedBreakdown(spans);
  EXPECT_DOUBLE_EQ(observed.t1, 0.5);
  EXPECT_DOUBLE_EQ(observed.t2, 2.0);
  EXPECT_DOUBLE_EQ(observed.t3, 0.375);
  EXPECT_DOUBLE_EQ(observed.total(), 2.875);
}

TEST(ObservedBreakdownTest, RootFiltersToOneQuerySubtree) {
  // Two interleaved query trees on one (shared) tracer snapshot.
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan("knn", obs::kNoSpan, -1));  // 0: query A
  spans.push_back(MakeSpan("knn", obs::kNoSpan, -1));  // 1: query B
  spans.push_back(MakeSpan("dir_scan", 0, 1.0));       // A.t1
  spans.push_back(MakeSpan("dir_scan", 1, 4.0));       // B.t1
  spans.push_back(MakeSpan("batch", 2, 8.0));          // A.t2 (nested)
  const CostBreakdown a = ObservedBreakdown(spans, 0);
  EXPECT_DOUBLE_EQ(a.t1, 1.0);
  EXPECT_DOUBLE_EQ(a.t2, 8.0);
  const CostBreakdown b = ObservedBreakdown(spans, 1);
  EXPECT_DOUBLE_EQ(b.t1, 4.0);
  EXPECT_DOUBLE_EQ(b.t2, 0.0);
  const CostBreakdown all = ObservedBreakdown(spans);
  EXPECT_DOUBLE_EQ(all.t1, 5.0);
}

TEST(CalibrationTrackerTest, AggregatesErrorAndBias) {
  CalibrationTracker tracker;
  // Two samples; t1 is predicted exactly, t2 is under-predicted 2x,
  // t3 over-predicted 2x.
  tracker.Record(CostBreakdown{1.0, 1.0, 4.0},
                 CostBreakdown{1.0, 2.0, 2.0});
  tracker.Record(CostBreakdown{1.0, 1.0, 4.0},
                 CostBreakdown{1.0, 2.0, 2.0});
  const CalibrationReport report = tracker.Report();
  if (!obs::kEnabled) {
    EXPECT_EQ(report.total.samples, 0u);
    EXPECT_EQ(tracker.samples(), 0u);
    return;
  }
  EXPECT_EQ(tracker.samples(), 2u);
  EXPECT_EQ(report.t1.samples, 2u);
  EXPECT_DOUBLE_EQ(report.t1.predicted_mean, 1.0);
  EXPECT_DOUBLE_EQ(report.t1.observed_mean, 1.0);
  EXPECT_DOUBLE_EQ(report.t1.mean_rel_error, 0.0);
  EXPECT_EQ(report.t1.bias, 0);
  EXPECT_DOUBLE_EQ(report.t2.mean_rel_error, 1.0);  // (2-1)/1
  EXPECT_EQ(report.t2.bias, 1);                     // under-prediction
  EXPECT_DOUBLE_EQ(report.t3.mean_rel_error, -0.5);  // (2-4)/4
  EXPECT_EQ(report.t3.bias, -1);                     // over-prediction
  // total: predicted 6, observed 5 -> (5-6)/6
  EXPECT_NEAR(report.total.mean_rel_error, -1.0 / 6.0, 1e-12);
  // |rel error| quantiles come from the fixed-bucket histogram. Both
  // t2 errors (exactly 1.0) land in the (0.75, 1.0] bucket, so the
  // estimates interpolate inside that bucket: rank 1 of 2 sits halfway
  // (p50 = 0.75 + 0.25 * 0.5) and rank 1.9 at 95% of the width.
  EXPECT_DOUBLE_EQ(report.t2.p50_abs_rel_error, 0.875);
  EXPECT_DOUBLE_EQ(report.t2.p95_abs_rel_error, 0.9875);
  tracker.Clear();
  EXPECT_EQ(tracker.samples(), 0u);
}

TEST(CalibrationTrackerTest, JsonReportHasAllComponents) {
  CalibrationTracker tracker;
  tracker.Record(CostBreakdown{1.0, 2.0, 3.0}, CostBreakdown{1.0, 2.0, 3.0});
  const std::string json = obs::CalibrationToJson(tracker.Report());
  for (const char* key :
       {"\"samples\"", "\"t1\"", "\"t2\"", "\"t3\"", "\"total\"",
        "\"predicted_mean\"", "\"observed_mean\"", "\"mean_rel_error\"",
        "\"p50_abs_rel_error\"", "\"p95_abs_rel_error\"", "\"bias\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

/// The documented calibration tolerance (docs/cost_model.md,
/// "Validating the model"): on uniform data the predicted per-query
/// T_2nd and T_3rd means must be within this factor of the observed
/// means. The model is analytic and the I/O simulated, so the factor
/// absorbs only model approximations (independence assumptions,
/// fractal-dimension fit), not machine noise.
constexpr double kCalibrationFactor = 3.0;

bool WithinFactor(double predicted, double observed, double factor) {
  if (predicted <= 0.0 || observed <= 0.0) return false;
  const double ratio = observed / predicted;
  return ratio >= 1.0 / factor && ratio <= factor;
}

class CalibrationAccuracyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CalibrationAccuracyTest, PredictionMatchesObservationWithinFactor) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  const size_t dims = GetParam();
  constexpr size_t kQueries = 24;
  Dataset data = GenerateUniform(3000 + kQueries, dims, 7);
  const Dataset queries = data.TakeTail(kQueries);
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  IqTree::Options build_options;
  build_options.optimize_for_k = 5;
  auto tree = IqTree::Build(data, storage, "t", disk, build_options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();

  const CostBreakdown predicted = (*tree)->PredictCost();
  CalibrationTracker tracker;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryTracer tracer;
    IqSearchOptions options;
    options.tracer = &tracer;
    auto hits = (*tree)->KNearestNeighbors(queries[i], 5, options);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    tracker.Record(predicted, ObservedBreakdown(tracer.Snapshot()));
  }
  const CalibrationReport report = tracker.Report();
  ASSERT_EQ(report.total.samples, kQueries);
  EXPECT_GT(report.t2.observed_mean, 0.0);
  EXPECT_GT(report.t3.observed_mean, 0.0);
  EXPECT_TRUE(WithinFactor(report.t2.predicted_mean, report.t2.observed_mean,
                           kCalibrationFactor))
      << "T_2nd predicted " << report.t2.predicted_mean << " vs observed "
      << report.t2.observed_mean;
  EXPECT_TRUE(WithinFactor(report.t3.predicted_mean, report.t3.observed_mean,
                           kCalibrationFactor))
      << "T_3rd predicted " << report.t3.predicted_mean << " vs observed "
      << report.t3.observed_mean;

  // Regression guard: a perturbed cost model (10x on every component)
  // must fail the same tolerance — the check has teeth.
  const CostBreakdown perturbed{predicted.t1 * 10.0, predicted.t2 * 10.0,
                                predicted.t3 * 10.0};
  EXPECT_FALSE(WithinFactor(perturbed.t2, report.t2.observed_mean,
                            kCalibrationFactor));
  EXPECT_FALSE(WithinFactor(perturbed.t3, report.t3.observed_mean,
                            kCalibrationFactor));
}

INSTANTIATE_TEST_SUITE_P(UniformDims, CalibrationAccuracyTest,
                         ::testing::Values(8, 16));

}  // namespace
}  // namespace iq
