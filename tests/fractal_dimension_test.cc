#include "fractal/fractal_dimension.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

TEST(FractalDimensionTest, UniformIsNearEmbeddingDimension) {
  for (size_t d : {2u, 4u}) {
    const Dataset data = GenerateUniform(30000, d, 13);
    const FractalEstimate est =
        EstimateCorrelationDimension(data.data(), data.size(), d);
    EXPECT_GT(est.dimension, 0.8 * static_cast<double>(d)) << "d=" << d;
    EXPECT_LE(est.dimension, static_cast<double>(d) + 1e-9);
    EXPECT_GT(est.fit_r2, 0.95);
  }
}

TEST(FractalDimensionTest, LineInHighDimIsNearOne) {
  // Points along a 1-d curve embedded in 6 dims.
  const Dataset data = GenerateManifold(30000, 6, 1, 0.0, 3);
  const FractalEstimate est =
      EstimateCorrelationDimension(data.data(), data.size(), 6);
  EXPECT_LT(est.dimension, 2.0);
  EXPECT_GT(est.dimension, 0.5);
}

TEST(FractalDimensionTest, BoxCountingAgreesRoughly) {
  const Dataset data = GenerateManifold(30000, 5, 2, 0.0, 9);
  const double d2 =
      EstimateCorrelationDimension(data.data(), data.size(), 5).dimension;
  const double d0 =
      EstimateBoxCountingDimension(data.data(), data.size(), 5).dimension;
  EXPECT_NEAR(d0, d2, 1.2);
}

TEST(FractalDimensionTest, DegenerateInputsFallBack) {
  const Dataset data = GenerateUniform(1, 4, 1);
  const FractalEstimate est =
      EstimateCorrelationDimension(data.data(), data.size(), 4);
  EXPECT_DOUBLE_EQ(est.dimension, 4.0);
}

TEST(FractalDimensionTest, IdenticalPointsDoNotCrash) {
  Dataset data(3);
  for (int i = 0; i < 100; ++i) data.Append(std::vector<float>{1, 2, 3});
  const FractalEstimate est =
      EstimateCorrelationDimension(data.data(), data.size(), 3);
  EXPECT_GT(est.dimension, 0.0);
  EXPECT_LE(est.dimension, 3.0);
}

TEST(FractalDimensionTest, SubsamplingIsStable) {
  const Dataset data = GenerateManifold(60000, 6, 3, 0.01, 21);
  FractalOptions small;
  small.max_sample = 5000;
  FractalOptions large;
  large.max_sample = 50000;
  const double with_small =
      EstimateCorrelationDimension(data.data(), data.size(), 6, small)
          .dimension;
  const double with_large =
      EstimateCorrelationDimension(data.data(), data.size(), 6, large)
          .dimension;
  EXPECT_NEAR(with_small, with_large, 1.0);
}

}  // namespace
}  // namespace iq
