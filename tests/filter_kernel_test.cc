#include "quant/filter_kernel.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/iq_tree.h"
#include "data/generators.h"
#include "geom/metrics.h"
#include "quant/grid_quantizer.h"
#include "scan/seq_scan.h"
#include "vafile/va_file.h"

// ---------------------------------------------------------------------------
// Counting allocator: proves the batch kernels are allocation-free in
// steady state. Only allocations made while g_counting is set are
// counted; everything else passes straight through to malloc.
// ---------------------------------------------------------------------------
namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace iq {
namespace {

/// Restores the process-wide dispatch on scope exit so a failing test
/// cannot leak a forced kernel into later tests.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(KernelDispatch d) { SetKernelDispatch(d); }
  ~ScopedDispatch() { SetKernelDispatch(KernelDispatch::kAuto); }
};

struct GridCase {
  Mbr mbr;
  std::vector<float> q;
  std::vector<uint32_t> cells;  // count * dims, point-major
  size_t count;
};

/// Random grid + query + encoded points. The query is drawn from a box
/// 3x the MBR so below/inside/above cases all occur per dimension, and
/// the count is odd so the AVX2 tail path is always exercised.
GridCase MakeCase(Rng& rng, size_t dims, unsigned bits, size_t count) {
  GridCase c;
  std::vector<float> lb(dims), ub(dims);
  for (size_t i = 0; i < dims; ++i) {
    const double a = rng.Uniform(-10, 10), b = rng.Uniform(-10, 10);
    lb[i] = static_cast<float>(std::min(a, b));
    ub[i] = static_cast<float>(std::max(a, b));
  }
  c.mbr = Mbr::FromBounds(std::move(lb), std::move(ub));
  c.q.resize(dims);
  for (size_t i = 0; i < dims; ++i) {
    const double ext = std::max<double>(c.mbr.Extent(i), 1e-3);
    c.q[i] = static_cast<float>(
        rng.Uniform(c.mbr.lb(i) - ext, c.mbr.ub(i) + ext));
  }
  c.count = count;
  c.cells.resize(count * dims);
  const uint64_t cells_per_dim = uint64_t{1} << bits;
  for (auto& cell : c.cells) {
    cell = static_cast<uint32_t>(rng.Index(cells_per_dim));
  }
  return c;
}

/// 0-ULP comparison: the doubles must be the same bit pattern (all
/// values here are finite, so == is exactly that).
#define EXPECT_BITEQ(a, b) EXPECT_EQ(a, b)

// The full g ladder through the table path (<= kMaxTableBits) plus 16
// (the VA-file maximum, direct path). g = 32 is kExactBits: those pages
// bypass the cell filter entirely and are covered by the BatchDistances
// tests below.
const unsigned kAllBits[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 16};
const size_t kAllDims[] = {2, 8, 16, 64};

TEST(FilterKernelEquivalence, BoundsMatchCellBoxMinDistMaxDist) {
  Rng rng(20260806);
  FilterKernel kernel;
  std::vector<double> lower, upper;
  std::vector<uint32_t> point_cells;
  for (unsigned bits : kAllBits) {
    for (size_t dims : kAllDims) {
      for (Metric metric : {Metric::kL2, Metric::kLMax}) {
        const GridCase c = MakeCase(rng, dims, bits, 37);
        kernel.BindBounds(c.q, metric, c.mbr, bits);
        EXPECT_EQ(kernel.table_path(), bits <= FilterKernel::kMaxTableBits);
        lower.assign(c.count, -1);
        upper.assign(c.count, -1);
        ScopedDispatch scalar(KernelDispatch::kScalar);
        kernel.Bounds(c.cells.data(), c.count, lower.data(), upper.data());
        const GridQuantizer quantizer(c.mbr, bits);
        for (size_t s = 0; s < c.count; ++s) {
          point_cells.assign(c.cells.begin() + s * dims,
                             c.cells.begin() + (s + 1) * dims);
          const Mbr box = quantizer.CellBox(point_cells);
          EXPECT_BITEQ(lower[s], MinDist(c.q, box, metric))
              << "bits=" << bits << " dims=" << dims << " s=" << s;
          EXPECT_BITEQ(upper[s], MaxDist(c.q, box, metric))
              << "bits=" << bits << " dims=" << dims << " s=" << s;
        }
      }
    }
  }
}

TEST(FilterKernelEquivalence, ScalarAndAvx2AgreeToZeroUlp) {
  if (!KernelAvx2Available()) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or unsupported CPU";
  }
  Rng rng(7);
  FilterKernel kernel;
  std::vector<double> lo_s, hi_s, lo_v, hi_v;
  for (unsigned bits : kAllBits) {
    for (size_t dims : kAllDims) {
      for (Metric metric : {Metric::kL2, Metric::kLMax}) {
        const GridCase c = MakeCase(rng, dims, bits, 41);
        kernel.BindBounds(c.q, metric, c.mbr, bits);
        lo_s.assign(c.count, -1);
        hi_s.assign(c.count, -1);
        lo_v.assign(c.count, -2);
        hi_v.assign(c.count, -2);
        {
          ScopedDispatch scalar(KernelDispatch::kScalar);
          kernel.Bounds(c.cells.data(), c.count, lo_s.data(), hi_s.data());
        }
        {
          ScopedDispatch avx2(KernelDispatch::kAvx2);
          kernel.Bounds(c.cells.data(), c.count, lo_v.data(), hi_v.data());
        }
        EXPECT_EQ(std::memcmp(lo_s.data(), lo_v.data(),
                              c.count * sizeof(double)),
                  0)
            << "bits=" << bits << " dims=" << dims;
        EXPECT_EQ(std::memcmp(hi_s.data(), hi_v.data(),
                              c.count * sizeof(double)),
                  0)
            << "bits=" << bits << " dims=" << dims;
      }
    }
  }
}

TEST(FilterKernelEquivalence, MinDistLowerBoundsMatchesBoundsLower) {
  Rng rng(99);
  FilterKernel kernel;
  const GridCase c = MakeCase(rng, 8, 6, 100);
  std::vector<double> lower(c.count), both_lower(c.count), upper(c.count);
  kernel.BindBounds(c.q, Metric::kL2, c.mbr, 6);
  kernel.Bounds(c.cells.data(), c.count, both_lower.data(), upper.data());
  kernel.BindMinDist(c.q, Metric::kL2, c.mbr, 6);
  kernel.MinDistLowerBounds(c.cells.data(), c.count, lower.data());
  for (size_t s = 0; s < c.count; ++s) {
    EXPECT_BITEQ(lower[s], both_lower[s]);
    EXPECT_LE(lower[s], upper[s]);
  }
}

TEST(FilterKernelEquivalence, SelectCandidatesAppliesThreshold) {
  Rng rng(5);
  FilterKernel kernel;
  const GridCase c = MakeCase(rng, 16, 4, 200);
  std::vector<double> lower(c.count);
  kernel.BindMinDist(c.q, Metric::kL2, c.mbr, 4);
  kernel.MinDistLowerBounds(c.cells.data(), c.count, lower.data());
  std::vector<double> sorted = lower;
  std::sort(sorted.begin(), sorted.end());
  const double threshold = sorted[c.count / 2];
  std::vector<uint32_t> candidates;
  kernel.SelectCandidates(c.cells.data(), c.count, threshold, &candidates);
  std::vector<uint32_t> expected;
  for (size_t s = 0; s < c.count; ++s) {
    if (lower[s] <= threshold) expected.push_back(static_cast<uint32_t>(s));
  }
  EXPECT_EQ(candidates, expected);
}

TEST(FilterKernelEquivalence, WindowCandidatesMatchIntersects) {
  Rng rng(13);
  FilterKernel kernel;
  std::vector<uint32_t> point_cells, candidates;
  for (unsigned bits : kAllBits) {
    for (size_t dims : {2u, 8u, 16u}) {
      const GridCase c = MakeCase(rng, dims, bits, 60);
      // Window: a random sub-box around a point of the grid region.
      std::vector<float> wlb(dims), wub(dims);
      for (size_t i = 0; i < dims; ++i) {
        const double a = rng.Uniform(c.mbr.lb(i), c.mbr.ub(i));
        const double b = rng.Uniform(c.mbr.lb(i), c.mbr.ub(i));
        wlb[i] = static_cast<float>(std::min(a, b));
        wub[i] = static_cast<float>(std::max(a, b));
      }
      const Mbr window = Mbr::FromBounds(std::move(wlb), std::move(wub));
      kernel.BindWindow(window, c.mbr, bits);
      candidates.clear();
      kernel.WindowCandidates(c.cells.data(), c.count, &candidates);
      const GridQuantizer quantizer(c.mbr, bits);
      std::vector<uint32_t> expected;
      for (size_t s = 0; s < c.count; ++s) {
        point_cells.assign(c.cells.begin() + s * dims,
                           c.cells.begin() + (s + 1) * dims);
        if (window.Intersects(quantizer.CellBox(point_cells))) {
          expected.push_back(static_cast<uint32_t>(s));
        }
      }
      EXPECT_EQ(candidates, expected) << "bits=" << bits << " dims=" << dims;
    }
  }
}

TEST(FilterKernelEquivalence, BatchDistancesMatchesDistance) {
  Rng rng(1234);
  for (size_t dims : kAllDims) {
    for (Metric metric : {Metric::kL2, Metric::kLMax}) {
      const size_t count = 53;
      std::vector<float> q(dims), points(count * dims);
      for (auto& v : q) v = static_cast<float>(rng.Uniform(-5, 5));
      for (auto& v : points) v = static_cast<float>(rng.Uniform(-5, 5));
      std::vector<double> scalar_out(count, -1);
      {
        ScopedDispatch scalar(KernelDispatch::kScalar);
        FilterKernel::BatchDistances(q, metric, points.data(), count,
                                     scalar_out.data());
      }
      for (size_t s = 0; s < count; ++s) {
        EXPECT_BITEQ(
            scalar_out[s],
            Distance(q, PointView(points.data() + s * dims, dims), metric));
      }
      if (KernelAvx2Available()) {
        std::vector<double> simd_out(count, -2);
        ScopedDispatch avx2(KernelDispatch::kAvx2);
        FilterKernel::BatchDistances(q, metric, points.data(), count,
                                     simd_out.data());
        EXPECT_EQ(std::memcmp(scalar_out.data(), simd_out.data(),
                              count * sizeof(double)),
                  0)
            << "dims=" << dims;
      }
    }
  }
}

TEST(FilterKernelDispatch, OverridesSelectTheNamedKernel) {
  {
    ScopedDispatch scalar(KernelDispatch::kScalar);
    EXPECT_STREQ(ActiveKernelName(), "scalar");
    EXPECT_EQ(kernel_dispatch(), KernelDispatch::kScalar);
  }
  if (KernelAvx2Available()) {
    ScopedDispatch avx2(KernelDispatch::kAvx2);
    EXPECT_STREQ(ActiveKernelName(), "avx2");
  }
  EXPECT_EQ(kernel_dispatch(), KernelDispatch::kAuto);
}

TEST(FilterKernelAllocation, SteadyStateBatchesAreAllocationFree) {
  Rng rng(321);
  const size_t dims = 16;
  const unsigned bits = 8;
  const GridCase c = MakeCase(rng, dims, bits, 256);
  FilterKernel kernel;
  std::vector<double> lower(c.count), upper(c.count);
  std::vector<uint32_t> candidates;
  candidates.reserve(c.count);
  const Mbr window = c.mbr;  // intersects everything — worst-case appends
  std::vector<float> points(c.count * dims, 0.5f);
  // Warm-up: builds tables, sizes every scratch buffer, and touches the
  // metric registry statics.
  kernel.BindBounds(c.q, Metric::kL2, c.mbr, bits);
  kernel.Bounds(c.cells.data(), c.count, lower.data(), upper.data());
  kernel.SelectCandidates(c.cells.data(), c.count, 1e30, &candidates);
  kernel.BindMinDist(c.q, Metric::kLMax, c.mbr, bits);
  kernel.MinDistLowerBounds(c.cells.data(), c.count, lower.data());
  kernel.BindWindow(window, c.mbr, bits);
  candidates.clear();
  kernel.WindowCandidates(c.cells.data(), c.count, &candidates);
  FilterKernel::BatchDistances(c.q, Metric::kL2, points.data(), c.count,
                               lower.data());
  // Steady state: rebinds of the same shape plus batch calls over a
  // whole page must not allocate at all.
  g_allocations.store(0);
  g_counting.store(true);
  kernel.BindBounds(c.q, Metric::kL2, c.mbr, bits);
  kernel.Bounds(c.cells.data(), c.count, lower.data(), upper.data());
  candidates.clear();
  kernel.SelectCandidates(c.cells.data(), c.count, 1e30, &candidates);
  kernel.BindMinDist(c.q, Metric::kLMax, c.mbr, bits);
  kernel.MinDistLowerBounds(c.cells.data(), c.count, lower.data());
  kernel.BindWindow(window, c.mbr, bits);
  candidates.clear();
  kernel.WindowCandidates(c.cells.data(), c.count, &candidates);
  FilterKernel::BatchDistances(c.q, Metric::kL2, points.data(), c.count,
                               lower.data());
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "batch filter path allocated on the heap";
  EXPECT_EQ(candidates.size(), c.count);  // the window covers the grid
}

// ---------------------------------------------------------------------------
// End-to-end: forcing scalar vs AVX2 must leave query results
// bit-identical across every rewired structure.
// ---------------------------------------------------------------------------

class FilterKernelEndToEnd : public ::testing::Test {
 protected:
  FilterKernelEndToEnd() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(FilterKernelEndToEnd, QueriesBitIdenticalAcrossKernels) {
  if (!KernelAvx2Available()) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or unsupported CPU";
  }
  Dataset data = GenerateColorLike(1500, 16, 3);
  const Dataset queries = data.TakeTail(8);
  auto tree = IqTree::Build(data, storage_, "t", disk_, IqTree::Options{});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  VaFile::Options va_options;
  va_options.bits_per_dim = 6;
  auto va = VaFile::Build(data, storage_, "va", disk_, va_options);
  ASSERT_TRUE(va.ok()) << va.status().ToString();
  auto scan = SeqScan::Build(data, storage_, "s", disk_, SeqScan::Options{});
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  const double radius = 0.9;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<std::vector<Neighbor>> knn(2), range(2);
    int slot = 0;
    for (KernelDispatch d :
         {KernelDispatch::kScalar, KernelDispatch::kAvx2}) {
      ScopedDispatch dispatch(d);
      auto t_knn = (*tree)->KNearestNeighbors(queries[qi], 10);
      auto v_knn = (*va)->KNearestNeighbors(queries[qi], 10);
      auto s_knn = (*scan)->KNearestNeighbors(queries[qi], 10);
      auto t_range = (*tree)->RangeSearch(queries[qi], radius);
      auto v_range = (*va)->RangeSearch(queries[qi], radius);
      auto s_range = (*scan)->RangeSearch(queries[qi], radius);
      ASSERT_TRUE(t_knn.ok() && v_knn.ok() && s_knn.ok());
      ASSERT_TRUE(t_range.ok() && v_range.ok() && s_range.ok());
      knn[slot].insert(knn[slot].end(), t_knn->begin(), t_knn->end());
      knn[slot].insert(knn[slot].end(), v_knn->begin(), v_knn->end());
      knn[slot].insert(knn[slot].end(), s_knn->begin(), s_knn->end());
      range[slot].insert(range[slot].end(), t_range->begin(), t_range->end());
      range[slot].insert(range[slot].end(), v_range->begin(), v_range->end());
      range[slot].insert(range[slot].end(), s_range->begin(), s_range->end());
      ++slot;
    }
    ASSERT_EQ(knn[0].size(), knn[1].size()) << "query " << qi;
    for (size_t i = 0; i < knn[0].size(); ++i) {
      EXPECT_EQ(knn[0][i].id, knn[1][i].id) << "query " << qi;
      EXPECT_BITEQ(knn[0][i].distance, knn[1][i].distance) << "query " << qi;
    }
    ASSERT_EQ(range[0].size(), range[1].size()) << "query " << qi;
    for (size_t i = 0; i < range[0].size(); ++i) {
      EXPECT_EQ(range[0][i].id, range[1][i].id) << "query " << qi;
      EXPECT_BITEQ(range[0][i].distance, range[1][i].distance)
          << "query " << qi;
    }
  }
}

}  // namespace
}  // namespace iq
