#!/bin/sh
# End-to-end fixture test for the iqlint binary: every check has at
# least one clean fixture (exit 0) and one violating fixture (exit 1,
# with the expected diagnostic name and file:line anchor), plus a
# suppression round-trip (suppressed source is clean; stripping the
# suppression comment re-surfaces the finding).
#
# usage: iqlint_fixtures.sh <iqlint-binary> <testdata-dir>
set -eu

IQLINT=$1
TESTDATA=$2
FAILURES=0
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# expect_clean <fixture>
expect_clean() {
  fixture=$1
  if ! "$IQLINT" --root "$TESTDATA/$fixture" src >"$TMP/out" 2>&1; then
    echo "FAIL: $fixture should be clean:"
    cat "$TMP/out"
    FAILURES=$((FAILURES + 1))
  fi
}

# expect_finding <fixture> <check> <file:line-regex>
expect_finding() {
  fixture=$1
  check=$2
  anchor=$3
  status=0
  "$IQLINT" --root "$TESTDATA/$fixture" src >"$TMP/out" 2>&1 || status=$?
  if [ "$status" -ne 1 ]; then
    echo "FAIL: $fixture exited $status, want 1:"
    cat "$TMP/out"
    FAILURES=$((FAILURES + 1))
    return
  fi
  if ! grep -q "\[$check\]" "$TMP/out"; then
    echo "FAIL: $fixture missing [$check] diagnostic:"
    cat "$TMP/out"
    FAILURES=$((FAILURES + 1))
  fi
  if ! grep -Eq "$anchor" "$TMP/out"; then
    echo "FAIL: $fixture missing anchor '$anchor':"
    cat "$TMP/out"
    FAILURES=$((FAILURES + 1))
  fi
}

expect_clean layering_good
expect_finding layering_bad layering 'src/obs/bad\.h:2: error'
expect_finding layering_cycle layering 'include cycle'
expect_clean hotpath_good
expect_finding hotpath_bad hotpath-alloc 'src/core/bad\.cc:11: error'
expect_finding hotpath_bad hotpath-alloc 'src/core/bad\.cc:13: error'
expect_finding hotpath_bad hotpath-alloc 'src/core/bad\.cc:19: error'
expect_clean lockrank_good
expect_finding lockrank_bad lock-rank 'src/core/bad\.cc:9: error'
expect_finding lockrank_bad lock-rank 'src/core/bad\.cc:19: error'
expect_clean cast_good
expect_finding cast_bad cast-safety 'src/core/bad\.cc:7: error'
expect_finding cast_bad cast-safety 'src/core/bad\.cc:10: error'
expect_clean metric_good
expect_finding metric_bad metric-hygiene 'metric_names\.h:7: error'
expect_finding metric_bad metric-hygiene 'src/core/user\.cc:5: error'
expect_clean guarded_good
expect_finding guarded_bad guarded-by-coverage 'src/core/bad\.h:17: error'
expect_clean lockset_good
expect_finding lockset_bad lock-set 'src/core/bad\.h:14: error'
expect_clean typestate_good
expect_finding typestate_bad typestate 'src/core/use\.cc:9: error'
expect_finding typestate_bad typestate 'src/core/use\.cc:16: error'
expect_clean floatdet_good
expect_finding floatdet_bad float-determinism 'src/quant/filter_kernel\.cc:8: error'
expect_finding floatdet_bad float-determinism 'src/CMakeLists\.txt:4: error'

# Suppression round-trip: as checked in, the fixture is clean; with the
# suppression comment stripped the finding comes back at the same spot.
expect_clean suppress
mkdir -p "$TMP/suppress/src/core"
grep -v 'allow(cast-safety)' "$TESTDATA/suppress/src/core/s.cc" \
  >"$TMP/suppress/src/core/s.cc"
if "$IQLINT" --root "$TMP/suppress" src >"$TMP/out" 2>&1; then
  echo "FAIL: stripped suppression should re-surface the finding"
  FAILURES=$((FAILURES + 1))
elif ! grep -q '\[cast-safety\]' "$TMP/out"; then
  echo "FAIL: stripped suppression produced the wrong diagnostic:"
  cat "$TMP/out"
  FAILURES=$((FAILURES + 1))
fi

# Usage errors exit 2.
status=0
"$IQLINT" --check nonsense --root "$TESTDATA/layering_good" \
  >/dev/null 2>&1 || status=$?
if [ "$status" -ne 2 ]; then
  echo "FAIL: unknown --check exited $status, want 2"
  FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "iqlint_fixtures: $FAILURES failure(s)"
  exit 1
fi
echo "iqlint_fixtures: all fixtures behaved"
