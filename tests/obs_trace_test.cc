// QueryTracer behavior plus the tracing<->stats consistency contract:
// a traced IqTree query must record a span tree whose aggregates equal
// the QueryStats counters the same query publishes, tracing must never
// change query results (including across a shared-tracer parallel
// batch), and the span cap must degrade gracefully.

#include "obs/trace.h"

#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/parallel_query_runner.h"
#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"

namespace iq {
namespace {

using obs::AggregateSpans;
using obs::QueryTracer;
using obs::ScopedSpan;
using obs::SpanRecord;

TEST(QueryTracerTest, RecordsTreeWithLogicalOrder) {
  QueryTracer tracer;
  const obs::SpanId root = tracer.BeginSpan("root");
  const obs::SpanId child = tracer.BeginSpan("child", root);
  tracer.AddAttr(child, "n", 2);
  tracer.AddAttr(child, "n", 3);  // accumulates
  tracer.EndSpan(child);
  tracer.EndSpan(root);
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  if (!obs::kEnabled) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent, root);
  // Logical interval nesting: root opens first, closes last.
  EXPECT_LT(spans[0].seq_begin, spans[1].seq_begin);
  EXPECT_LT(spans[1].seq_end, spans[0].seq_end);
  EXPECT_LE(spans[1].wall_begin_ns, spans[1].wall_end_ns);
  ASSERT_EQ(spans[1].attrs.size(), 1u);
  EXPECT_EQ(spans[1].attrs[0].first, "n");
  EXPECT_DOUBLE_EQ(spans[1].attrs[0].second, 5.0);
}

TEST(QueryTracerTest, CapDropsInsteadOfGrowing) {
  QueryTracer tracer(/*max_spans=*/4);
  for (int i = 0; i < 10; ++i) {
    const obs::SpanId id = tracer.BeginSpan("s");
    tracer.EndSpan(id);
  }
  if (!obs::kEnabled) return;
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(QueryTracerTest, ScopedSpanToleratesNullTracer) {
  ScopedSpan span(nullptr, "noop");
  span.AddAttr("x", 1.0);
  EXPECT_EQ(span.id(), obs::kNoSpan);
}

TEST(QueryTracerTest, ConcurrentSpansAllRecorded) {
  QueryTracer tracer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer]() {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&tracer, "work");
        span.AddAttr("i", static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (!obs::kEnabled) return;
  EXPECT_EQ(tracer.Snapshot().size(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TraceExportTest, JsonAndTreeOutput) {
  QueryTracer tracer;
  const obs::SpanId root = tracer.BeginSpan("root");
  const obs::SpanId child = tracer.BeginSpan("step", root);
  tracer.AddAttr(child, "count", 3);
  tracer.EndSpan(child);
  tracer.EndSpan(root);
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  const std::string json = obs::TraceToJson(spans);
  std::ostringstream tree;
  obs::PrintSpanTree(spans, tree);
  if (!obs::kEnabled) {
    EXPECT_EQ(json, "[]");
    return;
  }
  EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":null"), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(tree.str().find("root"), std::string::npos);
  EXPECT_NE(tree.str().find("  step"), std::string::npos);  // indented
}

class TracedQueryTest : public ::testing::Test {
 protected:
  void BuildTree(size_t n, size_t dims, unsigned seed) {
    data_ = GenerateCadLike(n + 16, dims, seed);
    queries_ = data_.TakeTail(16);
    disk_ = std::make_unique<DiskModel>(
        DiskParameters{0.010, 0.002, 2048});
    auto tree = IqTree::Build(data_, storage_, "t", *disk_, {});
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).value();
  }

  /// The acceptance contract behind `iqtool profile`: the span tree and
  /// the QueryStats counters are produced independently and must agree.
  static void ExpectSpansMatchStats(const std::vector<SpanRecord>& spans,
                                    const IqTree::QueryStats& stats) {
    EXPECT_EQ(AggregateSpans(spans, "page", nullptr),
              static_cast<double>(stats.pages_decoded));
    EXPECT_EQ(AggregateSpans(spans, "batch", nullptr),
              static_cast<double>(stats.batches));
    EXPECT_EQ(AggregateSpans(spans, "batch", "blocks"),
              static_cast<double>(stats.blocks_transferred));
    EXPECT_EQ(AggregateSpans(spans, "refine", nullptr) +
                  AggregateSpans(spans, "exact_page", "refinements"),
              static_cast<double>(stats.refinements));
    EXPECT_EQ(AggregateSpans(spans, "page", "cells_enqueued"),
              static_cast<double>(stats.cells_enqueued));
  }

  Dataset data_{1};
  Dataset queries_{1};
  MemoryStorage storage_;
  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<IqTree> tree_;
};

TEST_F(TracedQueryTest, KnnSpanAggregatesEqualQueryStats) {
  BuildTree(4000, 12, 11);
  for (size_t i = 0; i < queries_.size(); ++i) {
    QueryTracer tracer;
    IqSearchOptions options;
    options.tracer = &tracer;
    auto hits = tree_->KNearestNeighbors(queries_[i], 5, options);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    if (!obs::kEnabled) {
      EXPECT_TRUE(tracer.Snapshot().empty());
      continue;
    }
    const std::vector<SpanRecord> spans = tracer.Snapshot();
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans[0].name, "knn");
    ExpectSpansMatchStats(spans, tree_->last_query_stats());
  }
}

TEST_F(TracedQueryTest, RangeSpanAggregatesEqualQueryStats) {
  BuildTree(4000, 12, 12);
  QueryTracer tracer;
  IqSearchOptions options;
  options.tracer = &tracer;
  auto hits = tree_->RangeSearch(queries_[0], 0.4, options);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  if (!obs::kEnabled) return;
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "range");
  ExpectSpansMatchStats(spans, tree_->last_query_stats());
}

TEST_F(TracedQueryTest, StandardAccessKnnAlsoConsistent) {
  BuildTree(4000, 12, 13);
  QueryTracer tracer;
  IqSearchOptions options;
  options.optimized_access = false;
  options.tracer = &tracer;
  auto hits = tree_->KNearestNeighbors(queries_[0], 3, options);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  if (!obs::kEnabled) return;
  ExpectSpansMatchStats(tracer.Snapshot(), tree_->last_query_stats());
}

TEST_F(TracedQueryTest, TracingDoesNotChangeResults) {
  BuildTree(4000, 12, 14);
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto plain = tree_->KNearestNeighbors(queries_[i], 5);
    QueryTracer tracer;
    IqSearchOptions options;
    options.tracer = &tracer;
    auto traced = tree_->KNearestNeighbors(queries_[i], 5, options);
    ASSERT_TRUE(plain.ok() && traced.ok());
    ASSERT_EQ(plain->size(), traced->size());
    for (size_t s = 0; s < plain->size(); ++s) {
      EXPECT_EQ((*plain)[s].id, (*traced)[s].id);
      EXPECT_EQ((*plain)[s].distance, (*traced)[s].distance);
    }
  }
}

TEST_F(TracedQueryTest, SharedTracerParallelBatchBitIdentical) {
  BuildTree(6000, 12, 15);
  // Ground truth: sequential untraced queries.
  std::vector<std::vector<Neighbor>> expected;
  expected.reserve(queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto r = tree_->KNearestNeighbors(queries_[i], 5);
    ASSERT_TRUE(r.ok());
    expected.push_back(std::move(r).value());
  }
  // Parallel batch with every worker writing into one shared tracer.
  QueryTracer tracer;
  IqSearchOptions options;
  options.tracer = &tracer;
  ParallelQueryRunner runner(*tree_, 4);
  auto batch = runner.KnnBatch(queries_, 5, options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ((*batch)[i].size(), expected[i].size()) << "query " << i;
    for (size_t s = 0; s < expected[i].size(); ++s) {
      EXPECT_EQ((*batch)[i][s].id, expected[i][s].id);
      EXPECT_EQ((*batch)[i][s].distance, expected[i][s].distance);
    }
  }
  if (!obs::kEnabled) return;
  // One root span per query made it into the shared trace.
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  size_t roots = 0;
  for (const SpanRecord& span : spans) {
    if (span.parent == obs::kNoSpan) ++roots;
  }
  EXPECT_EQ(roots, queries_.size());
  EXPECT_EQ(tracer.dropped(), 0u);
}

}  // namespace
}  // namespace iq
