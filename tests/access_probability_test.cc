#include "costmodel/access_probability.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace iq {
namespace {

TEST(IntersectionFractionTest, FullContainment) {
  // Ball so large it covers the whole box: fraction 1 (L-max).
  const Mbr box = Mbr::FromBounds({0, 0}, {1, 1});
  const std::vector<float> q{0.5f, 0.5f};
  EXPECT_NEAR(IntersectionFraction(q, 10.0, box, Metric::kLMax), 1.0, 1e-9);
}

TEST(IntersectionFractionTest, Disjoint) {
  const Mbr box = Mbr::FromBounds({0, 0}, {1, 1});
  const std::vector<float> q{5.0f, 5.0f};
  EXPECT_EQ(IntersectionFraction(q, 0.5, box, Metric::kLMax), 0.0);
  EXPECT_EQ(IntersectionFraction(q, 0.0, box, Metric::kLMax), 0.0);
}

TEST(IntersectionFractionTest, HalfOverlap) {
  // Ball [0.5, 1.5]^1 over box [0,1]: covers half.
  const Mbr box = Mbr::FromBounds({0}, {1});
  const std::vector<float> q{1.0f};
  EXPECT_NEAR(IntersectionFraction(q, 0.5, box, Metric::kLMax), 0.5, 1e-9);
}

TEST(IntersectionFractionTest, DegenerateSidesUseLimits) {
  // A point-box (all sides degenerate) inside the ball: fraction 1.
  const Mbr point_box = Mbr::FromBounds({0.5, 0.5}, {0.5, 0.5});
  const std::vector<float> q{0.4f, 0.4f};
  EXPECT_EQ(IntersectionFraction(q, 0.2, point_box, Metric::kLMax), 1.0);
  // Outside the ball: 0.
  EXPECT_EQ(IntersectionFraction(q, 0.05, point_box, Metric::kLMax), 0.0);
}

TEST(PageAccessProbabilityTest, NoCompetitorsMeansCertainAccess) {
  const std::vector<float> q{0.5f, 0.5f};
  EXPECT_EQ(PageAccessProbability(q, 0.3, {}, Metric::kLMax), 1.0);
}

TEST(PageAccessProbabilityTest, KnownCloserPointKillsAccess) {
  // A degenerate (exact point) region inside the target sphere makes
  // the access probability exactly 0.
  const std::vector<float> q{0.5f, 0.5f};
  const Mbr point_box = Mbr::FromBounds({0.55f, 0.5f}, {0.55f, 0.5f});
  const PrunerRegion regions[] = {{&point_box, 1}};
  EXPECT_EQ(PageAccessProbability(q, 0.3, regions, Metric::kLMax), 0.0);
}

TEST(PageAccessProbabilityTest, MatchesClosedForm) {
  // One region with m points covering fraction f of its own volume:
  // P = (1 - f)^m (eq. 3).
  const std::vector<float> q{1.0f};
  const Mbr box = Mbr::FromBounds({0}, {1});
  const double r = 0.25;  // covers fraction 0.25 of the box
  const PrunerRegion regions[] = {{&box, 10}};
  const double expected = std::pow(0.75, 10);
  EXPECT_NEAR(PageAccessProbability(q, r, regions, Metric::kLMax, 1e-12),
              expected, 1e-9);
}

TEST(PageAccessProbabilityTest, ProductOverRegions) {
  const std::vector<float> q{1.0f};
  const Mbr box_a = Mbr::FromBounds({0}, {1});
  const Mbr box_b = Mbr::FromBounds({1}, {2});
  const PrunerRegion regions[] = {{&box_a, 4}, {&box_b, 4}};
  const double expected = std::pow(0.75, 4) * std::pow(0.75, 4);
  EXPECT_NEAR(
      PageAccessProbability(q, 0.25, regions, Metric::kLMax, 1e-12),
      expected, 1e-9);
}

TEST(PageAccessProbabilityTest, FloorShortCircuitsToZero) {
  const std::vector<float> q{0.5f};
  const Mbr box = Mbr::FromBounds({0}, {1});
  // Huge point count: probability collapses below any floor.
  const PrunerRegion regions[] = {{&box, 100000}};
  EXPECT_EQ(PageAccessProbability(q, 0.4, regions, Metric::kLMax, 1e-6),
            0.0);
}

TEST(PageAccessProbabilityTest, MorePointsLowerProbability) {
  const std::vector<float> q{1.0f};
  const Mbr box = Mbr::FromBounds({0}, {1});
  const PrunerRegion few[] = {{&box, 2}};
  const PrunerRegion many[] = {{&box, 20}};
  EXPECT_GT(PageAccessProbability(q, 0.25, few, Metric::kLMax, 1e-12),
            PageAccessProbability(q, 0.25, many, Metric::kLMax, 1e-12));
}

}  // namespace
}  // namespace iq
