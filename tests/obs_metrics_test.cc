#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace iq::obs {
namespace {

// Every test body branches on kEnabled where values matter, so the
// suite also passes in the -DIQ_OBS_DISABLED build configuration
// (where all metric operations are no-ops returning zero).

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kEnabled ? kThreads * kPerThread : 0);
}

TEST(CounterTest, AddAndReset) {
  Counter counter;
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), kEnabled ? 12u : 0u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(4.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), kEnabled ? 4.5 : 0.0);
  gauge.Add(-1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), kEnabled ? 3.0 : 0.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(HistogramTest, BucketAssignment) {
  constexpr double kBounds[] = {1.0, 10.0, 100.0};
  Histogram histogram(kBounds);
  histogram.Observe(0.5);    // <= 1
  histogram.Observe(1.0);    // <= 1 (le semantics)
  histogram.Observe(5.0);    // <= 10
  histogram.Observe(1000.0); // +Inf
  if (kEnabled) {
    EXPECT_EQ(histogram.BucketCount(0), 2u);
    EXPECT_EQ(histogram.BucketCount(1), 1u);
    EXPECT_EQ(histogram.BucketCount(2), 0u);
    EXPECT_EQ(histogram.BucketCount(3), 1u);
    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 1006.5);
  } else {
    EXPECT_EQ(histogram.count(), 0u);
  }
}

TEST(HistogramTest, QuantileIsExactAtBucketBoundaries) {
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram histogram(kBounds);
  // One observation per bucket (including the +Inf overflow): every
  // quartile rank lands exactly on a cumulative bucket count, so the
  // estimate returns the bucket's upper bound with no interpolation
  // error — the documented exact-value contract.
  histogram.Observe(1.0);
  histogram.Observe(2.0);
  histogram.Observe(4.0);
  histogram.Observe(100.0);  // +Inf bucket
  if (!kEnabled) {
    EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
    return;
  }
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.50), 2.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 4.0);
  // Ranks inside the +Inf bucket clamp to the highest finite bound.
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 4.0);
  // q=0 interpolates to the first bucket's lower edge, min(0, bounds[0]).
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  constexpr double kBounds[] = {10.0};
  Histogram histogram(kBounds);
  for (int i = 0; i < 4; ++i) histogram.Observe(3.0);  // all bucket 0
  if (!kEnabled) return;
  // Rank 2 of 4 sits halfway through [0, 10).
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
  constexpr double kBounds[] = {1.0, 2.0};
  Histogram histogram(kBounds);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);  // empty
  histogram.Observe(1.5);
  if (!kEnabled) return;
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(histogram.Quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(2.0), 2.0);
  // Negative-capable first bucket: lower edge is min(0, bounds[0]).
  constexpr double kSignedBounds[] = {-2.0, 2.0};
  Histogram signed_histogram(kSignedBounds);
  signed_histogram.Observe(-3.0);
  signed_histogram.Observe(-3.0);
  // Both land in bucket 0; p50 interpolates inside [-2, -2] -> exactly
  // the bound (lower = min(0, -2) = -2, upper = -2).
  EXPECT_DOUBLE_EQ(signed_histogram.Quantile(0.5), -2.0);
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  constexpr double kBounds[] = {0.5};
  Histogram histogram(kBounds);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t]() {
      const double v = t % 2 == 0 ? 0.25 : 0.75;  // alternate buckets
      for (uint64_t i = 0; i < kPerThread; ++i) histogram.Observe(v);
    });
  }
  for (std::thread& t : threads) t.join();
  if (kEnabled) {
    EXPECT_EQ(histogram.count(), kThreads * kPerThread);
    EXPECT_EQ(histogram.BucketCount(0), 2 * kPerThread);
    EXPECT_EQ(histogram.BucketCount(1), 2 * kPerThread);
  } else {
    EXPECT_EQ(histogram.count(), 0u);
  }
}

TEST(MetricRegistryTest, GetReturnsStablePointers) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("test_counter");
  Counter* b = registry.GetCounter("test_counter");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("test_gauge");
  Gauge* g2 = registry.GetGauge("test_gauge");
  EXPECT_EQ(g1, g2);
  constexpr double kBounds[] = {1.0};
  Histogram* h1 = registry.GetHistogram("test_histogram", kBounds);
  Histogram* h2 = registry.GetHistogram("test_histogram", kBounds);
  EXPECT_EQ(h1, h2);
}

TEST(MetricRegistryTest, SnapshotSortedAndTyped) {
  MetricRegistry registry;
  registry.GetCounter("b_counter")->Add(3);
  registry.GetGauge("a_gauge")->Set(1.5);
  constexpr double kBounds[] = {1.0, 2.0};
  registry.GetHistogram("c_histogram", kBounds)->Observe(1.5);
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a_gauge");
  EXPECT_EQ(snapshot[0].type, MetricSample::Type::kGauge);
  EXPECT_EQ(snapshot[1].name, "b_counter");
  EXPECT_EQ(snapshot[1].type, MetricSample::Type::kCounter);
  EXPECT_EQ(snapshot[2].name, "c_histogram");
  EXPECT_EQ(snapshot[2].type, MetricSample::Type::kHistogram);
  ASSERT_EQ(snapshot[2].bounds.size(), 2u);
  ASSERT_EQ(snapshot[2].bucket_counts.size(), 3u);
  if (kEnabled) {
    EXPECT_DOUBLE_EQ(snapshot[1].value, 3.0);
    EXPECT_DOUBLE_EQ(snapshot[0].value, 1.5);
    EXPECT_EQ(snapshot[2].count, 1u);
    EXPECT_EQ(snapshot[2].bucket_counts[1], 1u);
  }
}

TEST(MetricRegistryTest, ResetZeroesValuesKeepsNames) {
  MetricRegistry registry;
  registry.GetCounter("x_total")->Add(10);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("x_total")->Value(), 0u);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST(MetricRegistryTest, ConcurrentRegistrationAndIncrement) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      // Every thread looks the counter up itself: registration races
      // with increments from the winners.
      Counter* counter = registry.GetCounter("shared_total");
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared_total")->Value(),
            kEnabled ? kThreads * kPerThread : 0);
}

TEST(MetricRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricRegistry::Global(), &MetricRegistry::Global());
}

TEST(ExportTest, PrometheusFormat) {
  MetricRegistry registry;
  registry.GetCounter("iq_test_total")->Add(7);
  constexpr double kBounds[] = {1.0, 2.0};
  Histogram* histogram = registry.GetHistogram("iq_test_seconds", kBounds);
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(9.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE iq_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iq_test_seconds histogram"),
            std::string::npos);
  if (kEnabled) {
    EXPECT_NE(text.find("iq_test_total 7"), std::string::npos);
    // Buckets are cumulative in the exposition format.
    EXPECT_NE(text.find("iq_test_seconds_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("iq_test_seconds_bucket{le=\"2\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("iq_test_seconds_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("iq_test_seconds_count 3"), std::string::npos);
  }
}

TEST(ExportTest, JsonFormat) {
  MetricRegistry registry;
  registry.GetCounter("iq_test_total")->Add(2);
  const std::string json = ExportJson(registry.Snapshot());
  if (kEnabled) {
    EXPECT_EQ(json, "{\"iq_test_total\":2}");
  } else {
    EXPECT_EQ(json, "{\"iq_test_total\":0}");
  }
}

TEST(JsonWriterTest, NestedStructure) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("value");
  w.Key("list").BeginArray().Int(1).Int(2).EndArray();
  w.Key("nested").BeginObject().Key("flag").Bool(true).EndObject();
  w.Key("nothing").Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"value\",\"list\":[1,2],"
            "\"nested\":{\"flag\":true},\"nothing\":null}");
}

TEST(JsonWriterTest, EscapingAndNonFinite) {
  JsonWriter w;
  w.BeginArray();
  w.String("a\"b\\c\nd");
  w.String(std::string("ctrl:\x01", 6));
  w.Double(std::numeric_limits<double>::infinity());
  w.EndArray();
  EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\nd\",\"ctrl:\\u0001\",null]");
}

TEST(JsonWriterTest, RawSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject();
  w.Key("inner").Raw("{\"x\":1}");
  w.Key("after").Int(2);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"inner\":{\"x\":1},\"after\":2}");
}

}  // namespace
}  // namespace iq::obs
