#include "vafile/va_file.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

class VaFileTest : public ::testing::TestWithParam<unsigned> {
 protected:
  VaFileTest() : disk_(DiskParameters{0.010, 0.002, 4096}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_P(VaFileTest, KnnMatchesBruteForce) {
  const unsigned bits = GetParam();
  Dataset data = GenerateColorLike(2000, 8, 3);
  const Dataset queries = data.TakeTail(15);
  VaFile::Options options;
  options.bits_per_dim = bits;
  auto va = VaFile::Build(data, storage_, "va", disk_, options);
  ASSERT_TRUE(va.ok()) << va.status().ToString();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<double> dists;
    for (size_t i = 0; i < data.size(); ++i) {
      dists.push_back(Distance(queries[qi], data[i], Metric::kL2));
    }
    std::sort(dists.begin(), dists.end());
    auto got = (*va)->KNearestNeighbors(queries[qi], 5);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR((*got)[i].distance, dists[i], 1e-6)
          << "bits=" << bits << " query " << qi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitSettings, VaFileTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST_F(VaFileTest, MoreBitsVisitFewerVectors) {
  Dataset data = GenerateUniform(5000, 8, 5);
  const Dataset queries = data.TakeTail(5);
  double fractions[2];
  int slot = 0;
  for (unsigned bits : {2u, 8u}) {
    VaFile::Options options;
    options.bits_per_dim = bits;
    auto va = VaFile::Build(data, storage_, "va", disk_, options);
    ASSERT_TRUE(va.ok());
    double total = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ASSERT_TRUE((*va)->NearestNeighbor(queries[qi]).ok());
      total += (*va)->last_visit_fraction();
    }
    fractions[slot++] = total / queries.size();
  }
  EXPECT_LT(fractions[1], fractions[0]);
}

TEST_F(VaFileTest, RangeSearchMatchesBruteForce) {
  Dataset data = GenerateUniform(2000, 4, 7);
  const Dataset queries = data.TakeTail(5);
  VaFile::Options options;
  options.bits_per_dim = 4;
  auto va = VaFile::Build(data, storage_, "va", disk_, options);
  ASSERT_TRUE(va.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const double radius = 0.25;
    size_t expected = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      if (Distance(queries[qi], data[i], Metric::kL2) <= radius) ++expected;
    }
    auto got = (*va)->RangeSearch(queries[qi], radius);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->size(), expected);
  }
}

TEST_F(VaFileTest, FlushOpenRoundTrip) {
  Dataset data = GenerateUniform(1000, 6, 9);
  {
    VaFile::Options options;
    options.bits_per_dim = 5;
    auto va = VaFile::Build(data, storage_, "va", disk_, options);
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE((*va)->Flush().ok());
  }
  auto reopened = VaFile::Open(storage_, "va", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 1000u);
  EXPECT_EQ((*reopened)->bits_per_dim(), 5u);
  auto nn = (*reopened)->NearestNeighbor(data[123]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 123u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(VaFileTest, InsertAppends) {
  Dataset data = GenerateUniform(500, 4, 11);
  VaFile::Options options;
  auto va = VaFile::Build(data, storage_, "va", disk_, options);
  ASSERT_TRUE(va.ok());
  const std::vector<float> p{0.11f, 0.22f, 0.33f, 0.44f};
  ASSERT_TRUE((*va)->Insert(p).ok());
  EXPECT_EQ((*va)->size(), 501u);
  auto nn = (*va)->NearestNeighbor(p);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 500u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(VaFileTest, InsertOutsideDomainRejected) {
  Dataset data = GenerateUniform(100, 3, 13);
  auto va = VaFile::Build(data, storage_, "va", disk_, {});
  ASSERT_TRUE(va.ok());
  const std::vector<float> outside{2.0f, 0.5f, 0.5f};
  EXPECT_TRUE((*va)->Insert(outside).IsInvalidArgument());
}

TEST_F(VaFileTest, ScanCostIndependentOfQuery) {
  // The approximation scan dominates and costs the same for every query
  // — the linear-scan character the paper contrasts with the IQ-tree.
  Dataset data = GenerateUniform(20000, 16, 15);
  const Dataset queries = data.TakeTail(3);
  auto va = VaFile::Build(data, storage_, "va", disk_, {});
  ASSERT_TRUE(va.ok());
  std::vector<double> times;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    disk_.ResetStats();
    disk_.InvalidateHead();
    ASSERT_TRUE((*va)->NearestNeighbor(queries[qi]).ok());
    times.push_back(disk_.stats().io_time_s);
  }
  const double spread = *std::max_element(times.begin(), times.end()) -
                        *std::min_element(times.begin(), times.end());
  EXPECT_LT(spread, 0.5 * times[0]);
}

TEST_F(VaFileTest, WindowQueryMatchesBruteForce) {
  Dataset data = GenerateUniform(3000, 4, 17);
  VaFile::Options options;
  options.bits_per_dim = 4;
  auto va = VaFile::Build(data, storage_, "va", disk_, options);
  ASSERT_TRUE(va.ok());
  const Mbr windows[] = {
      Mbr::FromBounds({0.2f, 0.1f, 0.0f, 0.5f}, {0.6f, 0.9f, 0.4f, 0.8f}),
      Mbr::FromBounds({0, 0, 0, 0}, {1, 1, 1, 1}),
      Mbr::FromBounds({0.5f, 0.5f, 0.5f, 0.5f}, {0.5f, 0.5f, 0.5f, 0.5f}),
  };
  for (const Mbr& window : windows) {
    std::vector<PointId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (window.Contains(data[i])) {
        expected.push_back(static_cast<PointId>(i));
      }
    }
    auto got = (*va)->WindowQuery(window);
    ASSERT_TRUE(got.ok());
    std::sort(got->begin(), got->end());
    EXPECT_EQ(*got, expected);
  }
  // Fully contained cells skip the exact lookup: the visit fraction on
  // the whole-domain window is zero.
  ASSERT_TRUE((*va)->WindowQuery(windows[1]).ok());
  EXPECT_EQ((*va)->last_visit_fraction(), 0.0);
}

TEST_F(VaFileTest, RejectsBadBits) {
  Dataset data = GenerateUniform(10, 2, 1);
  VaFile::Options options;
  options.bits_per_dim = 0;
  EXPECT_TRUE(VaFile::Build(data, storage_, "va", disk_, options)
                  .status()
                  .IsInvalidArgument());
  options.bits_per_dim = 17;
  EXPECT_TRUE(VaFile::Build(data, storage_, "va", disk_, options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace iq
