#include "common/math_utils.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace iq {
namespace {

TEST(FitLineTest, PerfectLine) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};
  LineFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHasLowerR2) {
  std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y{0.0, 1.4, 1.6, 3.5, 3.4, 5.2};
  LineFit fit = FitLine(x, y);
  EXPECT_GT(fit.slope, 0.8);
  EXPECT_LT(fit.slope, 1.2);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.9);
}

TEST(FitLineTest, DegenerateInputsReturnZero) {
  std::vector<double> one{1.0};
  EXPECT_EQ(FitLine(one, one).slope, 0.0);
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  EXPECT_EQ(FitLine(x, y).slope, 0.0);  // vertical line: no fit
}

TEST(CeilDivTest, Values) {
  EXPECT_EQ(CeilDiv(0, 8), 0u);
  EXPECT_EQ(CeilDiv(1, 8), 1u);
  EXPECT_EQ(CeilDiv(8, 8), 1u);
  EXPECT_EQ(CeilDiv(9, 8), 2u);
}

TEST(BytesForBitsTest, Values) {
  EXPECT_EQ(BytesForBits(0), 0u);
  EXPECT_EQ(BytesForBits(1), 1u);
  EXPECT_EQ(BytesForBits(8), 1u);
  EXPECT_EQ(BytesForBits(9), 2u);
}

TEST(BinomialTest, MatchesPascal) {
  EXPECT_NEAR(Binomial(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(Binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(Binomial(16, 8), 12870.0, 1e-6);
  EXPECT_EQ(Binomial(4, 5), 0.0);
  EXPECT_EQ(Binomial(4, -1), 0.0);
}

}  // namespace
}  // namespace iq
