#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"

namespace iq {
namespace {

class IqTreeUpdateTest : public ::testing::Test {
 protected:
  IqTreeUpdateTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  /// Checks that the tree answers NN queries exactly over `reference`.
  void ExpectMatchesReference(const IqTree& tree, const Dataset& reference,
                              const Dataset& queries) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      double best = 1e300;
      for (size_t i = 0; i < reference.size(); ++i) {
        best = std::min(best,
                        Distance(queries[qi], reference[i], Metric::kL2));
      }
      auto nn = tree.NearestNeighbor(queries[qi]);
      ASSERT_TRUE(nn.ok()) << nn.status().ToString();
      EXPECT_NEAR(nn->distance, best, 1e-6) << "query " << qi;
    }
  }

  /// Structural invariants after updates.
  void ExpectInvariants(const IqTree& tree, uint64_t expected_points) {
    uint64_t total = 0;
    for (const DirEntry& entry : tree.directory()) {
      EXPECT_TRUE(IsQuantLevel(entry.quant_bits));
      EXPECT_GT(entry.count, 0u);
      total += entry.count;
    }
    EXPECT_EQ(total, expected_points);
    EXPECT_EQ(tree.size(), expected_points);
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(IqTreeUpdateTest, InsertIntoEmptyTree) {
  auto tree = IqTree::Build(Dataset(4), storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> p{0.1f, 0.2f, 0.3f, 0.4f};
  ASSERT_TRUE((*tree)->Insert(0, p).ok());
  ExpectInvariants(**tree, 1);
  auto nn = (*tree)->NearestNeighbor(p);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 0u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(IqTreeUpdateTest, BulkThenInsertsKeepCorrectness) {
  Dataset data = GenerateCadLike(2200, 6, 5);
  const Dataset queries = data.TakeTail(15);
  Dataset initial(6);
  Dataset inserts(6);
  for (size_t i = 0; i < data.size(); ++i) {
    (i < 2000 ? initial : inserts).Append(data[i]);
  }
  auto tree = IqTree::Build(initial, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  Dataset reference = initial;
  for (size_t i = 0; i < inserts.size(); ++i) {
    const PointId id = static_cast<PointId>(2000 + i);
    ASSERT_TRUE((*tree)->Insert(id, inserts[i]).ok());
    reference.Append(inserts[i]);
  }
  ExpectInvariants(**tree, reference.size());
  ExpectMatchesReference(**tree, reference, queries);
}

TEST_F(IqTreeUpdateTest, InsertsCauseSplitsWithoutLosingPoints) {
  // Insert enough points into a small tree to force page overflows.
  Dataset small = GenerateUniform(50, 8, 6);
  auto tree = IqTree::Build(small, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const size_t before_pages = (*tree)->num_pages();
  const Dataset extra = GenerateUniform(3000, 8, 7);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        (*tree)->Insert(static_cast<PointId>(50 + i), extra[i]).ok());
  }
  ExpectInvariants(**tree, 3050);
  EXPECT_GT((*tree)->num_pages(), before_pages);
}

TEST_F(IqTreeUpdateTest, RemoveFindsAndDeletes) {
  Dataset data = GenerateUniform(1000, 4, 8);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  // Remove every 10th point.
  Dataset reference(4);
  for (size_t i = 0; i < data.size(); ++i) {
    if (i % 10 == 0) {
      ASSERT_TRUE(
          (*tree)->Remove(static_cast<PointId>(i), data[i]).ok())
          << "removing " << i;
    } else {
      reference.Append(data[i]);
    }
  }
  ExpectInvariants(**tree, 900);
  // Removed points are gone: NN of a removed point is non-zero distance
  // (uniform data has no duplicates).
  auto nn = (*tree)->NearestNeighbor(data[0]);
  ASSERT_TRUE(nn.ok());
  EXPECT_GT(nn->distance, 0.0);
  const Dataset queries = GenerateUniform(10, 4, 9);
  ExpectMatchesReference(**tree, reference, queries);
}

TEST_F(IqTreeUpdateTest, RemoveMissingIsNotFound) {
  Dataset data = GenerateUniform(100, 4, 10);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> far{0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_TRUE((*tree)->Remove(9999, far).IsNotFound());
}

TEST_F(IqTreeUpdateTest, RemoveAllEmptiesTree) {
  Dataset data = GenerateUniform(64, 3, 11);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE((*tree)->Remove(static_cast<PointId>(i), data[i]).ok());
  }
  EXPECT_EQ((*tree)->size(), 0u);
  EXPECT_EQ((*tree)->num_pages(), 0u);
}

TEST_F(IqTreeUpdateTest, FlushPersistsUpdates) {
  Dataset data = GenerateUniform(500, 5, 12);
  {
    auto tree = IqTree::Build(data, storage_, "t", disk_, {});
    ASSERT_TRUE(tree.ok());
    const std::vector<float> p(5, 0.25f);
    ASSERT_TRUE((*tree)->Insert(12345, p).ok());
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  auto reopened = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 501u);
  const std::vector<float> p(5, 0.25f);
  auto nn = (*reopened)->NearestNeighbor(p);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 12345u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(IqTreeUpdateTest, InsertBatchMatchesLoopOfInserts) {
  Dataset data = GenerateCadLike(1500, 6, 20);
  const Dataset batch = GenerateCadLike(800, 6, 21);
  std::vector<PointId> batch_ids(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    batch_ids[i] = static_cast<PointId>(1500 + i);
  }

  auto loop_tree = IqTree::Build(data, storage_, "loop", disk_, {});
  ASSERT_TRUE(loop_tree.ok());
  const IoStats before_loop = disk_.stats();
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE((*loop_tree)->Insert(batch_ids[i], batch[i]).ok());
  }
  const uint64_t loop_writes =
      (disk_.stats() - before_loop).blocks_written;

  auto batch_tree = IqTree::Build(data, storage_, "batch", disk_, {});
  ASSERT_TRUE(batch_tree.ok());
  const IoStats before_batch = disk_.stats();
  ASSERT_TRUE((*batch_tree)->InsertBatch(batch_ids, batch).ok());
  const uint64_t batch_writes =
      (disk_.stats() - before_batch).blocks_written;

  EXPECT_EQ((*batch_tree)->size(), (*loop_tree)->size());
  EXPECT_TRUE((*batch_tree)->Validate().ok());
  EXPECT_LT(batch_writes, loop_writes / 2) << "batching should save writes";
  // Identical answers.
  const Dataset queries = GenerateCadLike(10, 6, 22);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto a = (*loop_tree)->NearestNeighbor(queries[qi]);
    auto b = (*batch_tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->distance, b->distance, 1e-6);
  }
}

TEST_F(IqTreeUpdateTest, InsertBatchIntoEmptyTree) {
  auto tree = IqTree::Build(Dataset(4), storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset batch = GenerateUniform(500, 4, 23);
  std::vector<PointId> ids(batch.size());
  std::iota(ids.begin(), ids.end(), 0);
  ASSERT_TRUE((*tree)->InsertBatch(ids, batch).ok());
  EXPECT_EQ((*tree)->size(), 500u);
  EXPECT_TRUE((*tree)->Validate().ok());
  auto nn = (*tree)->NearestNeighbor(batch[77]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(IqTreeUpdateTest, InsertBatchOverflowingOnePageManyTimes) {
  // Regression: routing a batch much larger than a page's capacity to a
  // single target page must cascade-split, not fail.
  Dataset tiny = GenerateUniform(2, 8, 29);
  auto tree = IqTree::Build(tiny, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset batch = GenerateUniform(6000, 8, 30);
  std::vector<PointId> ids(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ids[i] = static_cast<PointId>(2 + i);
  }
  ASSERT_TRUE((*tree)->InsertBatch(ids, batch).ok());
  EXPECT_EQ((*tree)->size(), 6002u);
  EXPECT_TRUE((*tree)->Validate().ok());
}

TEST_F(IqTreeUpdateTest, InsertBatchValidatesInputs) {
  Dataset data = GenerateUniform(100, 4, 24);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset wrong_dims = GenerateUniform(5, 3, 25);
  std::vector<PointId> ids(5, 0);
  EXPECT_TRUE(
      (*tree)->InsertBatch(ids, wrong_dims).IsInvalidArgument());
  const Dataset ok_dims = GenerateUniform(5, 4, 26);
  std::vector<PointId> too_few(3, 0);
  EXPECT_TRUE((*tree)->InsertBatch(too_few, ok_dims).IsInvalidArgument());
}

TEST_F(IqTreeUpdateTest, QueryStatsAreFilled) {
  Dataset data = GenerateUniform(20000, 16, 27);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset queries = GenerateUniform(3, 16, 28);
  ASSERT_TRUE((*tree)->NearestNeighbor(queries[0]).ok());
  const auto& stats = (*tree)->last_query_stats();
  EXPECT_GT(stats.pages_decoded, 0u);
  EXPECT_GT(stats.blocks_transferred, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.cells_enqueued, 0u);
  EXPECT_GE(stats.blocks_transferred, stats.pages_decoded);
  // The optimized strategy uses far fewer batches than pages.
  EXPECT_LT(stats.batches, stats.pages_decoded);
}

TEST_F(IqTreeUpdateTest, DimensionMismatchRejected) {
  Dataset data = GenerateUniform(100, 4, 13);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> wrong(5, 0.5f);
  EXPECT_TRUE((*tree)->Insert(1, wrong).IsInvalidArgument());
  EXPECT_TRUE((*tree)->Remove(1, wrong).IsInvalidArgument());
}

}  // namespace
}  // namespace iq
