#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"

namespace iq {
namespace {

class IqTreeUpdateTest : public ::testing::Test {
 protected:
  IqTreeUpdateTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  /// Checks that the tree answers NN queries exactly over `reference`.
  void ExpectMatchesReference(const IqTree& tree, const Dataset& reference,
                              const Dataset& queries) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      double best = 1e300;
      for (size_t i = 0; i < reference.size(); ++i) {
        best = std::min(best,
                        Distance(queries[qi], reference[i], Metric::kL2));
      }
      auto nn = tree.NearestNeighbor(queries[qi]);
      ASSERT_TRUE(nn.ok()) << nn.status().ToString();
      EXPECT_NEAR(nn->distance, best, 1e-6) << "query " << qi;
    }
  }

  /// Structural invariants after updates.
  void ExpectInvariants(const IqTree& tree, uint64_t expected_points) {
    uint64_t total = 0;
    for (const DirEntry& entry : tree.directory()) {
      EXPECT_TRUE(IsQuantLevel(entry.quant_bits));
      EXPECT_GT(entry.count, 0u);
      total += entry.count;
    }
    EXPECT_EQ(total, expected_points);
    EXPECT_EQ(tree.size(), expected_points);
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(IqTreeUpdateTest, InsertIntoEmptyTree) {
  auto tree = IqTree::Build(Dataset(4), storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> p{0.1f, 0.2f, 0.3f, 0.4f};
  ASSERT_TRUE((*tree)->Insert(0, p).ok());
  ExpectInvariants(**tree, 1);
  auto nn = (*tree)->NearestNeighbor(p);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 0u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(IqTreeUpdateTest, BulkThenInsertsKeepCorrectness) {
  Dataset data = GenerateCadLike(2200, 6, 5);
  const Dataset queries = data.TakeTail(15);
  Dataset initial(6);
  Dataset inserts(6);
  for (size_t i = 0; i < data.size(); ++i) {
    (i < 2000 ? initial : inserts).Append(data[i]);
  }
  auto tree = IqTree::Build(initial, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  Dataset reference = initial;
  for (size_t i = 0; i < inserts.size(); ++i) {
    const PointId id = static_cast<PointId>(2000 + i);
    ASSERT_TRUE((*tree)->Insert(id, inserts[i]).ok());
    reference.Append(inserts[i]);
  }
  ExpectInvariants(**tree, reference.size());
  ExpectMatchesReference(**tree, reference, queries);
}

TEST_F(IqTreeUpdateTest, InsertsCauseSplitsWithoutLosingPoints) {
  // Insert enough points into a small tree to force page overflows.
  Dataset small = GenerateUniform(50, 8, 6);
  auto tree = IqTree::Build(small, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const size_t before_pages = (*tree)->num_pages();
  const Dataset extra = GenerateUniform(3000, 8, 7);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        (*tree)->Insert(static_cast<PointId>(50 + i), extra[i]).ok());
  }
  ExpectInvariants(**tree, 3050);
  EXPECT_GT((*tree)->num_pages(), before_pages);
}

TEST_F(IqTreeUpdateTest, RemoveFindsAndDeletes) {
  Dataset data = GenerateUniform(1000, 4, 8);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  // Remove every 10th point.
  Dataset reference(4);
  for (size_t i = 0; i < data.size(); ++i) {
    if (i % 10 == 0) {
      ASSERT_TRUE(
          (*tree)->Remove(static_cast<PointId>(i), data[i]).ok())
          << "removing " << i;
    } else {
      reference.Append(data[i]);
    }
  }
  ExpectInvariants(**tree, 900);
  // Removed points are gone: NN of a removed point is non-zero distance
  // (uniform data has no duplicates).
  auto nn = (*tree)->NearestNeighbor(data[0]);
  ASSERT_TRUE(nn.ok());
  EXPECT_GT(nn->distance, 0.0);
  const Dataset queries = GenerateUniform(10, 4, 9);
  ExpectMatchesReference(**tree, reference, queries);
}

TEST_F(IqTreeUpdateTest, RemoveMissingIsNotFound) {
  Dataset data = GenerateUniform(100, 4, 10);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> far{0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_TRUE((*tree)->Remove(9999, far).IsNotFound());
}

TEST_F(IqTreeUpdateTest, RemoveAllEmptiesTree) {
  Dataset data = GenerateUniform(64, 3, 11);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE((*tree)->Remove(static_cast<PointId>(i), data[i]).ok());
  }
  EXPECT_EQ((*tree)->size(), 0u);
  EXPECT_EQ((*tree)->num_pages(), 0u);
}

TEST_F(IqTreeUpdateTest, FlushPersistsUpdates) {
  Dataset data = GenerateUniform(500, 5, 12);
  {
    auto tree = IqTree::Build(data, storage_, "t", disk_, {});
    ASSERT_TRUE(tree.ok());
    const std::vector<float> p(5, 0.25f);
    ASSERT_TRUE((*tree)->Insert(12345, p).ok());
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  auto reopened = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 501u);
  const std::vector<float> p(5, 0.25f);
  auto nn = (*reopened)->NearestNeighbor(p);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 12345u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(IqTreeUpdateTest, InsertBatchMatchesLoopOfInserts) {
  Dataset data = GenerateCadLike(1500, 6, 20);
  const Dataset batch = GenerateCadLike(800, 6, 21);
  std::vector<PointId> batch_ids(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    batch_ids[i] = static_cast<PointId>(1500 + i);
  }

  auto loop_tree = IqTree::Build(data, storage_, "loop", disk_, {});
  ASSERT_TRUE(loop_tree.ok());
  const IoStats before_loop = disk_.stats();
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE((*loop_tree)->Insert(batch_ids[i], batch[i]).ok());
  }
  const uint64_t loop_writes =
      (disk_.stats() - before_loop).blocks_written;

  auto batch_tree = IqTree::Build(data, storage_, "batch", disk_, {});
  ASSERT_TRUE(batch_tree.ok());
  const IoStats before_batch = disk_.stats();
  ASSERT_TRUE((*batch_tree)->InsertBatch(batch_ids, batch).ok());
  const uint64_t batch_writes =
      (disk_.stats() - before_batch).blocks_written;

  EXPECT_EQ((*batch_tree)->size(), (*loop_tree)->size());
  EXPECT_TRUE((*batch_tree)->Validate().ok());
  EXPECT_LT(batch_writes, loop_writes / 2) << "batching should save writes";
  // Identical answers.
  const Dataset queries = GenerateCadLike(10, 6, 22);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto a = (*loop_tree)->NearestNeighbor(queries[qi]);
    auto b = (*batch_tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->distance, b->distance, 1e-6);
  }
}

TEST_F(IqTreeUpdateTest, InsertBatchIntoEmptyTree) {
  auto tree = IqTree::Build(Dataset(4), storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset batch = GenerateUniform(500, 4, 23);
  std::vector<PointId> ids(batch.size());
  std::iota(ids.begin(), ids.end(), 0);
  ASSERT_TRUE((*tree)->InsertBatch(ids, batch).ok());
  EXPECT_EQ((*tree)->size(), 500u);
  EXPECT_TRUE((*tree)->Validate().ok());
  auto nn = (*tree)->NearestNeighbor(batch[77]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(IqTreeUpdateTest, InsertBatchOverflowingOnePageManyTimes) {
  // Regression: routing a batch much larger than a page's capacity to a
  // single target page must cascade-split, not fail.
  Dataset tiny = GenerateUniform(2, 8, 29);
  auto tree = IqTree::Build(tiny, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset batch = GenerateUniform(6000, 8, 30);
  std::vector<PointId> ids(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ids[i] = static_cast<PointId>(2 + i);
  }
  ASSERT_TRUE((*tree)->InsertBatch(ids, batch).ok());
  EXPECT_EQ((*tree)->size(), 6002u);
  EXPECT_TRUE((*tree)->Validate().ok());
}

TEST_F(IqTreeUpdateTest, InsertBatchValidatesInputs) {
  Dataset data = GenerateUniform(100, 4, 24);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset wrong_dims = GenerateUniform(5, 3, 25);
  std::vector<PointId> ids(5, 0);
  EXPECT_TRUE(
      (*tree)->InsertBatch(ids, wrong_dims).IsInvalidArgument());
  const Dataset ok_dims = GenerateUniform(5, 4, 26);
  std::vector<PointId> too_few(3, 0);
  EXPECT_TRUE((*tree)->InsertBatch(too_few, ok_dims).IsInvalidArgument());
}

TEST_F(IqTreeUpdateTest, QueryStatsAreFilled) {
  Dataset data = GenerateUniform(20000, 16, 27);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset queries = GenerateUniform(3, 16, 28);
  ASSERT_TRUE((*tree)->NearestNeighbor(queries[0]).ok());
  const auto& stats = (*tree)->last_query_stats();
  EXPECT_GT(stats.pages_decoded, 0u);
  EXPECT_GT(stats.blocks_transferred, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.cells_enqueued, 0u);
  EXPECT_GE(stats.blocks_transferred, stats.pages_decoded);
  // The optimized strategy uses far fewer batches than pages.
  EXPECT_LT(stats.batches, stats.pages_decoded);
}

TEST_F(IqTreeUpdateTest, DimensionMismatchRejected) {
  Dataset data = GenerateUniform(100, 4, 13);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> wrong(5, 0.5f);
  EXPECT_TRUE((*tree)->Insert(1, wrong).IsInvalidArgument());
  EXPECT_TRUE((*tree)->Remove(1, wrong).IsInvalidArgument());
}

/// File wrapper with an injectable write budget: once the shared budget
/// reaches zero, every Write/Resize fails with IOError (reads keep
/// working). -1 means unlimited.
class FaultyFile : public File {
 public:
  FaultyFile(std::shared_ptr<File> base, std::shared_ptr<std::atomic<int>> budget)
      : base_(std::move(base)), budget_(std::move(budget)) {}

  Status Read(uint64_t offset, uint64_t length, void* out) const override {
    return base_->Read(offset, length, out);
  }
  Status Write(uint64_t offset, uint64_t length, const void* data) override {
    if (!Spend()) return Status::IOError("injected write failure");
    return base_->Write(offset, length, data);
  }
  Status Resize(uint64_t size) override {
    if (!Spend()) return Status::IOError("injected resize failure");
    return base_->Resize(size);
  }
  uint64_t Size() const override { return base_->Size(); }

 private:
  bool Spend() {
    if (budget_->load() < 0) return true;
    return budget_->fetch_sub(1) > 0;
  }

  std::shared_ptr<File> base_;
  std::shared_ptr<std::atomic<int>> budget_;
};

/// MemoryStorage whose files share one write budget (see FaultyFile).
class FaultyStorage : public Storage {
 public:
  Result<std::shared_ptr<File>> Open(const std::string& name) override {
    auto file = base_.Open(name);
    if (!file.ok()) return file.status();
    return std::shared_ptr<File>(new FaultyFile(*file, budget_));
  }
  Result<std::shared_ptr<File>> Create(const std::string& name) override {
    auto file = base_.Create(name);
    if (!file.ok()) return file.status();
    return std::shared_ptr<File>(new FaultyFile(*file, budget_));
  }
  bool Exists(const std::string& name) const override {
    return base_.Exists(name);
  }
  Status Delete(const std::string& name) override {
    return base_.Delete(name);
  }

  /// The next `n` writes succeed, everything after fails.
  void FailAfter(int n) { budget_->store(n); }
  void Heal() { budget_->store(-1); }

 private:
  MemoryStorage base_;
  std::shared_ptr<std::atomic<int>> budget_ =
      std::make_shared<std::atomic<int>>(-1);
};

/// Sum of the directory's per-page counts — what the index actually
/// holds; total_points (tree.size()) must always match it.
uint64_t DirPointSum(const IqTree& tree) {
  uint64_t total = 0;
  for (const DirEntry& entry : tree.directory()) total += entry.count;
  return total;
}

/// Regression: Insert used to count the point before the page write, so
/// a failed write left size() one ahead of the directory — and a later
/// Flush persisted the lie.
TEST_F(IqTreeUpdateTest, FailedInsertDoesNotCountThePoint) {
  FaultyStorage storage;
  Dataset data = GenerateUniform(600, 4, 31);
  auto tree = IqTree::Build(data, storage, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const uint64_t before = (*tree)->size();

  storage.FailAfter(0);
  const std::vector<float> p{0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_TRUE((*tree)->Insert(600, p).IsIOError());
  storage.Heal();

  EXPECT_EQ((*tree)->size(), before);
  EXPECT_EQ(DirPointSum(**tree), before);
  // The tree must remain durable and reopenable with the same count.
  ASSERT_TRUE((*tree)->Flush().ok());
  auto reopened = IqTree::Open(storage, "t", disk_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), before);
  EXPECT_EQ(DirPointSum(**reopened), before);
}

/// Same shape on the empty-directory seeding path of Insert.
TEST_F(IqTreeUpdateTest, FailedFirstInsertLeavesEmptyTreeEmpty) {
  FaultyStorage storage;
  auto tree = IqTree::Build(Dataset(4), storage, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  storage.FailAfter(0);
  const std::vector<float> p{0.1f, 0.2f, 0.3f, 0.4f};
  EXPECT_TRUE((*tree)->Insert(0, p).IsIOError());
  storage.Heal();
  EXPECT_EQ((*tree)->size(), 0u);
  EXPECT_TRUE((*tree)->directory().empty());
  // After healing, the same insert must succeed cleanly.
  ASSERT_TRUE((*tree)->Insert(0, p).ok());
  EXPECT_EQ((*tree)->size(), 1u);
  EXPECT_EQ(DirPointSum(**tree), 1u);
}

/// Regression: InsertBatch used to count the whole batch up front; a
/// group failing mid-batch left size() ahead of the written groups.
/// Now earlier (successful) groups stay written AND counted, and the
/// failed group is neither.
TEST_F(IqTreeUpdateTest, FailedInsertBatchCountsOnlyWrittenGroups) {
  FaultyStorage storage;
  Dataset data = GenerateUniform(3000, 4, 32);
  Dataset initial(4);
  Dataset batch(4);
  for (size_t i = 0; i < data.size(); ++i) {
    (i < 2800 ? initial : batch).Append(data[i]);
  }
  auto tree = IqTree::Build(initial, storage, "t", disk_, {});
  ASSERT_TRUE(tree.ok());

  std::vector<PointId> ids(batch.size());
  std::iota(ids.begin(), ids.end(), 2800u);
  // A batch over many pages needs many writes; let a few through so
  // some groups land before the injected failure.
  storage.FailAfter(3);
  const Status status = (*tree)->InsertBatch(ids, batch);
  storage.Heal();
  EXPECT_TRUE(status.IsIOError());

  // Whatever landed, the metadata must match the directory exactly.
  EXPECT_EQ((*tree)->size(), DirPointSum(**tree));
  EXPECT_GE((*tree)->size(), initial.size());
  EXPECT_LE((*tree)->size(), initial.size() + batch.size());
  ASSERT_TRUE((*tree)->Flush().ok());
  auto reopened = IqTree::Open(storage, "t", disk_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), DirPointSum(**reopened));
}

/// Regression: Remove used to decrement before the rewrite; a failed
/// rewrite left size() one behind the directory.
TEST_F(IqTreeUpdateTest, FailedRemoveKeepsThePointCounted) {
  FaultyStorage storage;
  Dataset data = GenerateUniform(600, 4, 33);
  auto tree = IqTree::Build(data, storage, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const uint64_t before = (*tree)->size();

  storage.FailAfter(0);
  EXPECT_TRUE((*tree)->Remove(17, data[17]).IsIOError());
  storage.Heal();

  EXPECT_EQ((*tree)->size(), before);
  EXPECT_EQ(DirPointSum(**tree), before);
  // The point is still in the index and findable.
  auto nn = (*tree)->NearestNeighbor(data[17]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
  // After healing the remove must go through.
  ASSERT_TRUE((*tree)->Remove(17, data[17]).ok());
  EXPECT_EQ((*tree)->size(), before - 1);
  EXPECT_EQ(DirPointSum(**tree), before - 1);
}

}  // namespace
}  // namespace iq
