#include "data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "fractal/fractal_dimension.h"

namespace iq {
namespace {

TEST(GeneratorsTest, UniformShapeAndDomain) {
  const Dataset data = GenerateUniform(1000, 8, 1);
  EXPECT_EQ(data.size(), 1000u);
  EXPECT_EQ(data.dims(), 8u);
  const Mbr bounds = data.Bounds();
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_GE(bounds.lb(i), 0.0f);
    EXPECT_LE(bounds.ub(i), 1.0f);
    // With 1000 points the box should nearly fill the cube.
    EXPECT_GT(bounds.Extent(i), 0.9f);
  }
}

TEST(GeneratorsTest, Deterministic) {
  const Dataset a = GenerateUniform(100, 4, 7);
  const Dataset b = GenerateUniform(100, 4, 7);
  const Dataset c = GenerateUniform(100, 4, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t r = 0; r < a.size(); ++r) {
    for (size_t i = 0; i < 4; ++i) EXPECT_EQ(a[r][i], b[r][i]);
  }
  bool any_diff = false;
  for (size_t r = 0; r < a.size() && !any_diff; ++r) {
    for (size_t i = 0; i < 4; ++i) any_diff |= a[r][i] != c[r][i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, ClusteredIsMoreConcentratedThanUniform) {
  ClusterParams params;
  params.clusters = 5;
  params.sigma = 0.02;
  const Dataset clustered = GenerateClustered(5000, 6, 3, params);
  const Dataset uniform = GenerateUniform(5000, 6, 3);
  // Correlation dimension of strongly clustered data is far below d.
  const double d_clustered =
      EstimateCorrelationDimension(clustered.data(), clustered.size(), 6)
          .dimension;
  const double d_uniform =
      EstimateCorrelationDimension(uniform.data(), uniform.size(), 6)
          .dimension;
  EXPECT_LT(d_clustered, d_uniform);
}

TEST(GeneratorsTest, ColorLikeLiesNearSimplex) {
  const Dataset data = GenerateColorLike(2000, 16, 5);
  for (size_t r = 0; r < data.size(); r += 100) {
    double sum = 0;
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_GE(data[r][i], 0.0f);
      sum += data[r][i];
    }
    EXPECT_NEAR(sum, 1.0, 0.05);
  }
}

TEST(GeneratorsTest, WeatherLikeHasLowFractalDimension) {
  const Dataset data = GenerateWeatherLike(20000, 9, 5);
  const FractalEstimate est =
      EstimateCorrelationDimension(data.data(), data.size(), 9);
  // The paper describes WEATHER as "highly clustered ... rather low
  // fractal dimension"; the generator is built around a 3-d manifold.
  EXPECT_LT(est.dimension, 6.0);
}

TEST(GeneratorsTest, ManifoldDimensionTracksLatentDims) {
  const Dataset d2 = GenerateManifold(20000, 8, 2, 0.0, 11);
  const Dataset d5 = GenerateManifold(20000, 8, 5, 0.0, 11);
  const double est2 =
      EstimateCorrelationDimension(d2.data(), d2.size(), 8).dimension;
  const double est5 =
      EstimateCorrelationDimension(d5.data(), d5.size(), 8).dimension;
  EXPECT_LT(est2, est5);
  EXPECT_LT(est2, 4.0);
}

TEST(GeneratorsTest, AllGeneratorsStayInUnitCube) {
  const Dataset sets[] = {
      GenerateCadLike(500, 16, 1),
      GenerateColorLike(500, 16, 2),
      GenerateWeatherLike(500, 9, 3),
      GenerateManifold(500, 12, 3, 0.05, 4),
  };
  for (const Dataset& data : sets) {
    const Mbr bounds = data.Bounds();
    for (size_t i = 0; i < data.dims(); ++i) {
      EXPECT_GE(bounds.lb(i), 0.0f);
      EXPECT_LE(bounds.ub(i), 1.0f);
    }
  }
}

}  // namespace
}  // namespace iq
