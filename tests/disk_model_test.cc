#include "io/disk_model.h"

#include <gtest/gtest.h>

namespace iq {
namespace {

DiskParameters TestParams() {
  DiskParameters p;
  p.seek_time_s = 0.010;
  p.xfer_time_s = 0.002;
  p.block_size = 8192;
  return p;
}

TEST(DiskModelTest, FirstAccessPaysSeek) {
  DiskModel disk(TestParams());
  const uint32_t f = disk.RegisterFile();
  disk.ChargeRead(f, 0, 1);
  EXPECT_EQ(disk.stats().seeks, 1u);
  EXPECT_EQ(disk.stats().blocks_read, 1u);
  EXPECT_DOUBLE_EQ(disk.stats().io_time_s, 0.012);
}

TEST(DiskModelTest, SequentialContinuationIsSeekFree) {
  DiskModel disk(TestParams());
  const uint32_t f = disk.RegisterFile();
  disk.ChargeRead(f, 0, 4);
  disk.ChargeRead(f, 4, 2);  // continues where the head is
  EXPECT_EQ(disk.stats().seeks, 1u);
  EXPECT_DOUBLE_EQ(disk.stats().io_time_s, 0.010 + 6 * 0.002);
}

TEST(DiskModelTest, GapOrBackwardCausesSeek) {
  DiskModel disk(TestParams());
  const uint32_t f = disk.RegisterFile();
  disk.ChargeRead(f, 0, 1);
  disk.ChargeRead(f, 5, 1);  // forward gap
  disk.ChargeRead(f, 0, 1);  // backward
  EXPECT_EQ(disk.stats().seeks, 3u);
}

TEST(DiskModelTest, SwitchingFilesCausesSeek) {
  DiskModel disk(TestParams());
  const uint32_t a = disk.RegisterFile();
  const uint32_t b = disk.RegisterFile();
  disk.ChargeRead(a, 0, 1);
  disk.ChargeRead(b, 1, 1);
  disk.ChargeRead(a, 1, 1);  // would have been sequential without b
  EXPECT_EQ(disk.stats().seeks, 3u);
}

TEST(DiskModelTest, WritesTrackedSeparately) {
  DiskModel disk(TestParams());
  const uint32_t f = disk.RegisterFile();
  disk.ChargeWrite(f, 0, 3);
  EXPECT_EQ(disk.stats().blocks_written, 3u);
  EXPECT_EQ(disk.stats().blocks_read, 0u);
}

TEST(DiskModelTest, ChargeReadBytesRoundsToBlocks) {
  DiskModel disk(TestParams());
  const uint32_t f = disk.RegisterFile();
  // 1 byte at offset 8191 spans blocks 0 and 1.
  disk.ChargeReadBytes(f, 8191, 2);
  EXPECT_EQ(disk.stats().blocks_read, 2u);
  disk.ResetStats();
  disk.ChargeReadBytes(f, 0, 0);  // empty read is free
  EXPECT_EQ(disk.stats().blocks_read, 0u);
  EXPECT_EQ(disk.stats().seeks, 0u);
}

TEST(DiskModelTest, InvalidateHeadForcesSeek) {
  DiskModel disk(TestParams());
  const uint32_t f = disk.RegisterFile();
  disk.ChargeRead(f, 0, 2);
  disk.InvalidateHead();
  disk.ChargeRead(f, 2, 1);  // would have been sequential
  EXPECT_EQ(disk.stats().seeks, 2u);
}

TEST(DiskModelTest, StatsSubtraction) {
  DiskModel disk(TestParams());
  const uint32_t f = disk.RegisterFile();
  disk.ChargeRead(f, 0, 2);
  const IoStats before = disk.stats();
  disk.ChargeRead(f, 2, 3);
  const IoStats delta = disk.stats() - before;
  EXPECT_EQ(delta.blocks_read, 3u);
  EXPECT_EQ(delta.seeks, 0u);
}

TEST(DiskParametersTest, SeekEquivalentBlocks) {
  DiskParameters p = TestParams();
  EXPECT_DOUBLE_EQ(p.SeekEquivalentBlocks(), 5.0);
}

}  // namespace
}  // namespace iq
