#include "core/partitioner.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

TEST(PartitionerTest, MbrOfIds) {
  Dataset data(2, {0, 0, 1, 1, 0.5, 2});
  std::vector<PointId> ids{0, 2};
  const Mbr mbr = MbrOfIds(data, ids);
  EXPECT_EQ(mbr.lb(0), 0.0f);
  EXPECT_EQ(mbr.ub(0), 0.5f);
  EXPECT_EQ(mbr.ub(1), 2.0f);
}

TEST(PartitionerTest, SplitAtMedianBalances) {
  const Dataset data = GenerateUniform(101, 3, 4);
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const Mbr mbr = MbrOfIds(data, ids);
  const size_t dim = mbr.LongestDimension();
  const size_t mid = SplitAtMedian(data, ids, mbr);
  EXPECT_EQ(mid, 50u);
  const float pivot = data[ids[mid]][dim];
  for (size_t i = 0; i < mid; ++i) EXPECT_LE(data[ids[i]][dim], pivot);
  for (size_t i = mid; i < ids.size(); ++i) {
    EXPECT_GE(data[ids[i]][dim], pivot);
  }
}

class PartitionerProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PartitionerProperty, PartitionsAreAValidCover) {
  const uint32_t capacity = GetParam();
  const Dataset data = GenerateUniform(1000, 4, 9);
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const auto partitions = PartitionDataset(data, ids, capacity);
  // Contiguous, ordered, covering ranges.
  size_t expect_begin = 0;
  std::set<PointId> seen;
  for (const Partition& partition : partitions) {
    EXPECT_EQ(partition.begin, expect_begin);
    EXPECT_GT(partition.count(), 0u);
    EXPECT_LE(partition.count(), capacity);
    expect_begin = partition.end;
    for (size_t i = partition.begin; i < partition.end; ++i) {
      EXPECT_TRUE(partition.mbr.Contains(data[ids[i]]));
      EXPECT_TRUE(seen.insert(ids[i]).second) << "duplicate id";
    }
  }
  EXPECT_EQ(expect_begin, data.size());
  EXPECT_EQ(seen.size(), data.size());
}

INSTANTIATE_TEST_SUITE_P(Capacities, PartitionerProperty,
                         ::testing::Values(1u, 7u, 64u, 1000u, 5000u));

TEST(PartitionerTest, PacksPagesFull) {
  // The capacity-multiple split of [4]: all but one partition are
  // filled to exactly the page capacity (~100% storage utilization).
  const Dataset data = GenerateUniform(1024, 2, 10);
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const auto partitions = PartitionDataset(data, ids, 100);
  ASSERT_EQ(partitions.size(), 11u);  // ceil(1024 / 100)
  size_t full = 0;
  size_t total = 0;
  for (const Partition& partition : partitions) {
    if (partition.count() == 100) ++full;
    total += partition.count();
  }
  EXPECT_EQ(total, 1024u);
  EXPECT_GE(full, 10u);
}

TEST(PartitionerTest, EmptyInput) {
  const Dataset data(3);
  std::vector<PointId> ids;
  EXPECT_TRUE(PartitionDataset(data, ids, 10).empty());
}

TEST(PartitionerTest, DuplicatePointsStillTerminate) {
  Dataset data(2);
  for (int i = 0; i < 300; ++i) data.Append(std::vector<float>{0.5f, 0.5f});
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const auto partitions = PartitionDataset(data, ids, 32);
  size_t total = 0;
  for (const Partition& partition : partitions) {
    EXPECT_LE(partition.count(), 32u);
    total += partition.count();
  }
  EXPECT_EQ(total, 300u);
}

}  // namespace
}  // namespace iq
