#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace iq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, OverloadCodesStringifyByName) {
  EXPECT_EQ(Status::Unavailable("busy").ToString(), "Unavailable: busy");
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
}

Status FailsThrough() {
  IQ_RETURN_NOT_OK(Status::Corruption("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  Status s = FailsThrough();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.message(), "inner");
}

Result<int> MakeValue(bool fail) {
  if (fail) return Status::NotFound("nope");
  return 41;
}

Result<int> Chain(bool fail) {
  IQ_ASSIGN_OR_RETURN(int v, MakeValue(fail));
  return v + 1;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = MakeValue(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.ValueOr(0), 41);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = MakeValue(true);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Chain(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = Chain(true);
  EXPECT_TRUE(err.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace iq
