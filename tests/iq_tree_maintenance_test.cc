// Tests for the maintenance features of §6: Reoptimize() (restore the
// optimal layout after updates), Validate() (deep scrub), and the k-NN
// optimization target of the cost model.

#include <filesystem>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"

namespace iq {
namespace {

class IqTreeMaintenanceTest : public ::testing::Test {
 protected:
  IqTreeMaintenanceTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(IqTreeMaintenanceTest, ValidatePassesOnFreshTree) {
  const Dataset data = GenerateCadLike(3000, 8, 1);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->Validate().ok());
}

TEST_F(IqTreeMaintenanceTest, ValidatePassesAfterUpdates) {
  Dataset data = GenerateUniform(1000, 5, 2);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset extra = GenerateUniform(500, 5, 3);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        (*tree)->Insert(static_cast<PointId>(1000 + i), extra[i]).ok());
  }
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE((*tree)->Remove(static_cast<PointId>(i), data[i]).ok());
  }
  Status s = (*tree)->Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_F(IqTreeMaintenanceTest, ValidateCatchesTamperedPage) {
  const Dataset data = GenerateUniform(2000, 6, 4);
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, {}).ok());
  // Flip bytes in the middle of the first quantized page's payload.
  auto f = storage_.Open("t.qpg");
  ASSERT_TRUE(f.ok());
  const uint8_t junk[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE((*f)->Write(100, sizeof(junk), junk).ok());
  auto tree = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->Validate().IsCorruption());
}

TEST_F(IqTreeMaintenanceTest, ReoptimizeReclaimsGarbageAndStaysCorrect) {
  Dataset data = GenerateCadLike(3020, 6, 5);
  const Dataset queries = data.TakeTail(20);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  // Churn: interleaved inserts and removals leave dead extents behind.
  const Dataset extra = GenerateCadLike(1000, 6, 6);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        (*tree)->Insert(static_cast<PointId>(3000 + i), extra[i]).ok());
  }
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_TRUE((*tree)->Remove(static_cast<PointId>(i), data[i]).ok());
  }
  auto dat_before = storage_.Open("t.dat");
  ASSERT_TRUE(dat_before.ok());
  const uint64_t dat_size_before = (*dat_before)->Size();

  ASSERT_TRUE((*tree)->Reoptimize().ok());

  EXPECT_EQ((*tree)->size(), 3500u);
  EXPECT_TRUE((*tree)->Validate().ok());
  // Garbage reclaimed: the exact file shrank, and the quantized file
  // has exactly one block per directory entry again.
  auto dat_after = storage_.Open("t.dat");
  ASSERT_TRUE(dat_after.ok());
  EXPECT_LT((*dat_after)->Size(), dat_size_before);
  auto qpg = storage_.Open("t.qpg");
  ASSERT_TRUE(qpg.ok());
  EXPECT_EQ((*qpg)->Size(), (*tree)->num_pages() * 2048u);
  // Queries remain exact.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    double best = 1e300;
    for (size_t i = 500; i < 3000; ++i) {
      best = std::min(best, Distance(queries[qi], data[i], Metric::kL2));
    }
    for (size_t i = 0; i < extra.size(); ++i) {
      best = std::min(best, Distance(queries[qi], extra[i], Metric::kL2));
    }
    auto nn = (*tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(nn.ok());
    EXPECT_NEAR(nn->distance, best, 1e-6);
  }
}

TEST_F(IqTreeMaintenanceTest, ReoptimizePersists) {
  Dataset data = GenerateUniform(800, 4, 7);
  {
    auto tree = IqTree::Build(data, storage_, "t", disk_, {});
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE((*tree)->Remove(0, data[0]).ok());
    ASSERT_TRUE((*tree)->Reoptimize().ok());
  }
  auto reopened = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 799u);
  EXPECT_TRUE((*reopened)->Validate().ok());
}

TEST_F(IqTreeMaintenanceTest, ReoptimizeEmptyTree) {
  auto tree = IqTree::Build(Dataset(3), storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->Reoptimize().ok());
  EXPECT_EQ((*tree)->num_pages(), 0u);
}

TEST_F(IqTreeMaintenanceTest, KnnTargetYieldsFinerQuantization) {
  // Optimizing for k = 25 means larger query balls, hence more expected
  // refinements per cell, hence finer pages than the k = 1 build.
  const Dataset data = GenerateCadLike(20000, 8, 8);
  IqTree::Options for_nn;
  auto tree_nn = IqTree::Build(data, storage_, "a", disk_, for_nn);
  ASSERT_TRUE(tree_nn.ok());
  IqTree::Options for_knn;
  for_knn.optimize_for_k = 25;
  auto tree_knn = IqTree::Build(data, storage_, "b", disk_, for_knn);
  ASSERT_TRUE(tree_knn.ok());
  EXPECT_GE((*tree_knn)->num_pages(), (*tree_nn)->num_pages());
  // Both remain exact for any query k.
  const Dataset queries = GenerateCadLike(5, 8, 9);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto a = (*tree_nn)->KNearestNeighbors(queries[qi], 25);
    auto b = (*tree_knn)->KNearestNeighbors(queries[qi], 25);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_NEAR((*a)[i].distance, (*b)[i].distance, 1e-6);
    }
  }
}

TEST_F(IqTreeMaintenanceTest, KnnTargetPersists) {
  const Dataset data = GenerateUniform(500, 4, 10);
  IqTree::Options options;
  options.optimize_for_k = 7;
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, options).ok());
  auto reopened = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(reopened.ok());
  // Survives a reoptimize round-trip through the persisted metadata.
  ASSERT_TRUE((*reopened)->Reoptimize().ok());
  EXPECT_TRUE((*reopened)->Validate().ok());
}

TEST_F(IqTreeMaintenanceTest, EndToEndOnFileStorage) {
  // The whole lifecycle against real OS files.
  const std::string dir =
      ::testing::TempDir() + "/iq_fs_" +
      std::to_string(reinterpret_cast<uintptr_t>(this));
  std::filesystem::create_directories(dir);
  FileStorage storage(dir);
  Dataset data = GenerateWeatherLike(2010, 9, 11);
  const Dataset queries = data.TakeTail(10);
  {
    auto tree = IqTree::Build(data, storage, "w", disk_, {});
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_TRUE((*tree)->Insert(99999, queries[0]).ok());
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  auto tree = IqTree::Open(storage, "w", disk_);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->size(), 2001u);
  EXPECT_TRUE((*tree)->Validate().ok());
  auto nn = (*tree)->NearestNeighbor(queries[0]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 99999u);
  EXPECT_EQ(nn->distance, 0.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace iq
