// ParallelQueryRunner correctness: batch results must be bit-identical
// to the sequential path at every thread count, with and without a
// shared BlockCache. Under IQ_SANITIZE=thread this doubles as the
// "concurrent batch queries" stress of the hardening matrix — many
// threads querying one IqTree, all charging one DiskModel and sharing
// one cache.

#include "concurrency/parallel_query_runner.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/block_cache.h"
#include "io/storage.h"

namespace iq {
namespace {

class ParallelQueryRunnerTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kBlockSize = 2048;

  void BuildTree(size_t n, size_t dims, unsigned seed) {
    data_ = GenerateCadLike(n + 32, dims, seed);
    queries_ = data_.TakeTail(32);
    disk_ = std::make_unique<DiskModel>(
        DiskParameters{0.010, 0.002, kBlockSize});
    auto tree = IqTree::Build(data_, storage_, "t", *disk_, {});
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).value();
  }

  /// The ground truth the batch must reproduce exactly: the same
  /// sequential calls a single-threaded caller would make.
  std::vector<std::vector<Neighbor>> SequentialKnn(
      size_t k, const IqSearchOptions& options) {
    std::vector<std::vector<Neighbor>> out;
    out.reserve(queries_.size());
    for (size_t i = 0; i < queries_.size(); ++i) {
      auto r = tree_->KNearestNeighbors(queries_[i], k, options);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(std::move(r).value());
    }
    return out;
  }

  std::vector<std::vector<Neighbor>> SequentialRange(double radius) {
    std::vector<std::vector<Neighbor>> out;
    out.reserve(queries_.size());
    for (size_t i = 0; i < queries_.size(); ++i) {
      auto r = tree_->RangeSearch(queries_[i], radius);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      out.push_back(std::move(r).value());
    }
    return out;
  }

  MemoryStorage storage_;
  Dataset data_;
  Dataset queries_;
  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<IqTree> tree_;
};

TEST_F(ParallelQueryRunnerTest, KnnIdenticalToSequentialAtAllThreadCounts) {
  BuildTree(3000, 8, 42);
  const IqSearchOptions options;
  const auto expected = SequentialKnn(5, options);
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    ParallelQueryRunner runner(*tree_, threads);
    auto got = runner.KnnBatch(queries_, 5, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // operator== on Neighbor is exact: ids and double distances must
    // match bit-for-bit, not just approximately.
    EXPECT_EQ(*got, expected) << threads << " threads";
  }
}

TEST_F(ParallelQueryRunnerTest, StandardAccessPathAlsoIdentical) {
  BuildTree(2000, 4, 7);
  IqSearchOptions options;
  options.optimized_access = false;
  const auto expected = SequentialKnn(3, options);
  ParallelQueryRunner runner(*tree_, 4);
  auto got = runner.KnnBatch(queries_, 3, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, expected);
}

TEST_F(ParallelQueryRunnerTest, RangeIdenticalToSequential) {
  BuildTree(2500, 6, 11);
  for (double radius : {0.05, 0.3}) {
    const auto expected = SequentialRange(radius);
    for (size_t threads : {1u, 4u}) {
      ParallelQueryRunner runner(*tree_, threads);
      auto got = runner.RangeBatch(queries_, radius);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(*got, expected) << "radius " << radius << ", " << threads
                                << " threads";
    }
  }
}

TEST_F(ParallelQueryRunnerTest, SharedBlockCacheDoesNotChangeResults) {
  BuildTree(3000, 8, 23);
  const IqSearchOptions options;
  const auto expected = SequentialKnn(5, options);
  // Small capacity forces concurrent eviction churn mid-query.
  BlockCache cache(kBlockSize, 16);
  tree_->set_block_cache(&cache);
  ParallelQueryRunner runner(*tree_, 8);
  for (int round = 0; round < 3; ++round) {
    auto got = runner.KnnBatch(queries_, 5, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected) << "round " << round;
  }
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
  tree_->set_block_cache(nullptr);
}

TEST_F(ParallelQueryRunnerTest, RunnerIsReusableAcrossBatches) {
  BuildTree(1500, 4, 5);
  ParallelQueryRunner runner(*tree_, 4);
  const auto expected_knn = SequentialKnn(2, {});
  const auto expected_range = SequentialRange(0.2);
  auto knn = runner.KnnBatch(queries_, 2, {});
  ASSERT_TRUE(knn.ok());
  auto range = runner.RangeBatch(queries_, 0.2);
  ASSERT_TRUE(range.ok());
  auto knn2 = runner.KnnBatch(queries_, 2, {});
  ASSERT_TRUE(knn2.ok());
  EXPECT_EQ(*knn, expected_knn);
  EXPECT_EQ(*range, expected_range);
  EXPECT_EQ(*knn2, expected_knn);
}

TEST_F(ParallelQueryRunnerTest, EmptyBatchReturnsEmpty) {
  BuildTree(500, 3, 9);
  ParallelQueryRunner runner(*tree_, 2);
  const Dataset empty(3);
  auto got = runner.KnnBatch(empty, 5, {});
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_F(ParallelQueryRunnerTest, PerQueryErrorSurfacesAsBatchError) {
  BuildTree(500, 3, 13);
  ParallelQueryRunner runner(*tree_, 2);
  // Wrong dimensionality: every query fails with InvalidArgument; the
  // batch must report it rather than return partial garbage.
  const Dataset wrong_dims = GenerateUniform(4, 5, 1);
  auto got = runner.KnnBatch(wrong_dims, 1, {});
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsInvalidArgument())
      << got.status().ToString();
}

TEST_F(ParallelQueryRunnerTest, LastQueryStatsIsOneQuerysCounters) {
  BuildTree(2000, 6, 17);
  ParallelQueryRunner runner(*tree_, 4);
  auto got = runner.KnnBatch(queries_, 3, {});
  ASSERT_TRUE(got.ok());
  // Whichever query published last: its counters are internally
  // consistent (a decoded page implies at least one batch; never a
  // blend of two queries' halves).
  const IqTree::QueryStats stats = tree_->last_query_stats();
  EXPECT_GT(stats.pages_decoded, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GE(stats.blocks_transferred, stats.batches);
}

}  // namespace
}  // namespace iq
