#include "io/block_cache.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/block_file.h"
#include "io/storage.h"

namespace iq {
namespace {

class BlockCacheTest : public ::testing::Test {
 protected:
  BlockCacheTest() : disk_(DiskParameters{0.010, 0.002, 512}) {}

  std::unique_ptr<BlockFile> MakeFile(int blocks) {
    auto bf = std::make_unique<BlockFile>();
    EXPECT_TRUE(bf->Open(storage_, "bf", disk_, /*create=*/true).ok());
    std::vector<uint8_t> block(512);
    for (int i = 0; i < blocks; ++i) {
      block.assign(512, static_cast<uint8_t>(i));
      EXPECT_TRUE(bf->AppendBlock(block.data()).ok());
    }
    return bf;
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(BlockCacheTest, LruBasics) {
  BlockCache cache(512, 2);
  std::vector<uint8_t> a(512, 1), b(512, 2), c(512, 3), out(512);
  cache.Insert(0, 10, a.data());
  cache.Insert(0, 11, b.data());
  EXPECT_TRUE(cache.Lookup(0, 10, out.data()));
  EXPECT_EQ(out[0], 1);
  // Insert a third block: 11 is now LRU and must be evicted.
  cache.Insert(0, 12, c.data());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup(0, 11, out.data()));
  EXPECT_TRUE(cache.Lookup(0, 12, out.data()));
  EXPECT_EQ(out[0], 3);
}

TEST_F(BlockCacheTest, KeysAreFileScoped) {
  BlockCache cache(512, 4);
  std::vector<uint8_t> a(512, 7), out(512);
  cache.Insert(1, 5, a.data());
  EXPECT_FALSE(cache.Lookup(2, 5, out.data()));
  EXPECT_TRUE(cache.Lookup(1, 5, out.data()));
  cache.EraseFile(1);
  EXPECT_FALSE(cache.Lookup(1, 5, out.data()));
}

TEST_F(BlockCacheTest, ZeroCapacityDisables) {
  BlockCache cache(512, 0);
  std::vector<uint8_t> a(512, 7), out(512);
  cache.Insert(1, 5, a.data());
  EXPECT_FALSE(cache.Lookup(1, 5, out.data()));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(BlockCacheTest, BlockFileHitsAreFree) {
  auto bf = MakeFile(16);
  BlockCache cache(512, 32);
  bf->set_cache(&cache);
  std::vector<uint8_t> out(16 * 512);
  disk_.ResetStats();
  disk_.InvalidateHead();
  ASSERT_TRUE(bf->ReadRange(0, 16, out.data()).ok());
  const uint64_t cold = disk_.stats().blocks_read;
  EXPECT_EQ(cold, 16u);
  // Warm: everything served from cache, no disk charge.
  disk_.ResetStats();
  ASSERT_TRUE(bf->ReadRange(0, 16, out.data()).ok());
  EXPECT_EQ(disk_.stats().blocks_read, 0u);
  EXPECT_EQ(disk_.stats().seeks, 0u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(out[i * 512], static_cast<uint8_t>(i));
  }
}

TEST_F(BlockCacheTest, PartialHitsChargeOnlyMissRuns) {
  auto bf = MakeFile(8);
  BlockCache cache(512, 32);
  bf->set_cache(&cache);
  std::vector<uint8_t> out(8 * 512);
  // Prime blocks 2-3 only.
  ASSERT_TRUE(bf->ReadRange(2, 2, out.data()).ok());
  disk_.ResetStats();
  disk_.InvalidateHead();
  ASSERT_TRUE(bf->ReadRange(0, 8, out.data()).ok());
  // Misses: [0,1] and [4..7] — 6 blocks, 2 runs.
  EXPECT_EQ(disk_.stats().blocks_read, 6u);
  EXPECT_EQ(disk_.stats().seeks, 2u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i * 512], static_cast<uint8_t>(i)) << "block " << i;
  }
}

TEST_F(BlockCacheTest, WritesKeepCacheCoherent) {
  auto bf = MakeFile(4);
  BlockCache cache(512, 8);
  bf->set_cache(&cache);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(bf->ReadBlock(1, out.data()).ok());
  std::vector<uint8_t> updated(512, 99);
  ASSERT_TRUE(bf->WriteBlock(1, updated.data()).ok());
  disk_.ResetStats();
  ASSERT_TRUE(bf->ReadBlock(1, out.data()).ok());
  EXPECT_EQ(disk_.stats().blocks_read, 0u);  // served from cache
  EXPECT_EQ(out[0], 99);                     // and up to date
}

TEST_F(BlockCacheTest, IqTreeWarmQueriesGetCheaper) {
  Dataset data = GenerateCadLike(5000, 8, 9);
  const Dataset queries = data.TakeTail(5);
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  MemoryStorage storage;
  auto tree = IqTree::Build(data, storage, "t", disk, {});
  ASSERT_TRUE(tree.ok());
  BlockCache cache(2048, 4096);
  (*tree)->set_block_cache(&cache);

  auto run_queries = [&] {
    disk.ResetStats();
    disk.InvalidateHead();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto nn = (*tree)->NearestNeighbor(queries[qi]);
      EXPECT_TRUE(nn.ok());
      disk.InvalidateHead();
    }
    return disk.stats().io_time_s;
  };
  const double cold = run_queries();
  const double warm = run_queries();
  EXPECT_LT(warm, 0.7 * cold);
  // Correctness is unaffected: warm answers equal a cache-free tree's.
  (*tree)->set_block_cache(nullptr);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto without = (*tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(without.ok());
    (*tree)->set_block_cache(&cache);
    auto with = (*tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(with.ok());
    (*tree)->set_block_cache(nullptr);
    EXPECT_EQ(without->id, with->id);
    EXPECT_EQ(without->distance, with->distance);
  }
}

TEST_F(BlockCacheTest, SurvivesReoptimize) {
  Dataset data = GenerateUniform(2000, 5, 11);
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  MemoryStorage storage;
  auto tree = IqTree::Build(data, storage, "t", disk, {});
  ASSERT_TRUE(tree.ok());
  BlockCache cache(2048, 1024);
  (*tree)->set_block_cache(&cache);
  ASSERT_TRUE((*tree)->Remove(0, data[0]).ok());
  ASSERT_TRUE((*tree)->Reoptimize().ok());
  // Queries remain correct after the rebuild with the cache attached.
  auto nn = (*tree)->NearestNeighbor(data[1]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
  EXPECT_TRUE((*tree)->Validate().ok());
}

}  // namespace
}  // namespace iq
