// Unit tests for the iqlint lexer, the symbol layer, and the nine
// project-contract checks. These work on in-memory snippets; the
// fixture corpus under tools/iqlint/testdata/ is exercised end-to-end
// (binary, exit codes) by the iqlint_fixtures shell test.

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "iqlint/iqlint.h"
#include "iqlint/lexer.h"

namespace iqlint {
namespace {

LintConfig SmallConfig() {
  LintConfig config;
  config.module_deps = {
      {"common", {}},
      {"obs", {"common"}},
      {"io", {"common", "obs"}},
      {"core", {"io", "obs"}},
  };
  return config;
}

std::vector<Finding> RunAll(const std::vector<LexedFile>& files,
                            const LintConfig& config) {
  return RunChecks(files, config, /*enabled=*/{});
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(Lexer, TokensCarryLines) {
  const LexedFile f = LexFile("a.cc", "int x = 42;\nfloat y;\n");
  ASSERT_EQ(f.tokens.size(), 8u);
  EXPECT_EQ(f.tokens[0].text, "int");
  EXPECT_EQ(f.tokens[0].kind, Token::Kind::kIdent);
  EXPECT_EQ(f.tokens[3].text, "42");
  EXPECT_EQ(f.tokens[3].kind, Token::Kind::kNumber);
  EXPECT_EQ(f.tokens[3].line, 1);
  EXPECT_EQ(f.tokens[5].text, "float");
  EXPECT_EQ(f.tokens[5].line, 2);
}

TEST(Lexer, CommentsAreDroppedButSuppressionsKept) {
  const LexedFile f = LexFile(
      "a.cc",
      "// iqlint: allow(cast-safety): bounded by caller\n"
      "int x; /* new malloc */\n");
  ASSERT_EQ(f.suppressions.size(), 1u);
  EXPECT_EQ(f.suppressions[0].check, "cast-safety");
  EXPECT_EQ(f.suppressions[0].reason, "bounded by caller");
  EXPECT_EQ(f.suppressions[0].line, 1);
  // No token from either comment survives.
  for (const Token& t : f.tokens) {
    EXPECT_NE(t.text, "new");
    EXPECT_NE(t.text, "malloc");
  }
}

TEST(Lexer, IncludesExtracted) {
  const LexedFile f = LexFile(
      "a.cc", "#include \"io/storage.h\"\n#include <vector>\nint x;\n");
  ASSERT_EQ(f.includes.size(), 2u);
  EXPECT_EQ(f.includes[0].path, "io/storage.h");
  EXPECT_FALSE(f.includes[0].angled);
  EXPECT_EQ(f.includes[0].line, 1);
  EXPECT_EQ(f.includes[1].path, "vector");
  EXPECT_TRUE(f.includes[1].angled);
}

TEST(Lexer, StringLiteralsAreStringTokens) {
  const LexedFile f = LexFile("a.cc", "const char* s = \"iq_x_total\";\n");
  bool found = false;
  for (const Token& t : f.tokens) {
    if (t.kind == Token::Kind::kString) {
      EXPECT_EQ(t.text, "iq_x_total");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

TEST(Layering, AllowedEdgesAreClean) {
  const std::vector<LexedFile> files = {
      LexFile("src/io/a.h", "#include \"obs/m.h\"\n#include \"common/x.h\"\n"),
      LexFile("src/core/b.h", "#include \"io/a.h\"\n"),
  };
  std::vector<Finding> out;
  CheckLayering(files, SmallConfig(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(Layering, TransitiveDependencyIsAllowed) {
  // core -> io -> obs; core also declares obs, but common is implicit
  // everywhere and transitive closure lets core see io's deps.
  LintConfig config;
  config.module_deps = {
      {"common", {}}, {"obs", {"common"}}, {"io", {"obs"}}, {"core", {"io"}}};
  const std::vector<LexedFile> files = {
      LexFile("src/core/b.h", "#include \"obs/m.h\"\n"),
  };
  std::vector<Finding> out;
  CheckLayering(files, config, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Layering, BackEdgeIsFlaggedWithAnchor) {
  const std::vector<LexedFile> files = {
      LexFile("src/obs/bad.h", "// comment\n#include \"io/cache.h\"\n"),
  };
  std::vector<Finding> out;
  CheckLayering(files, SmallConfig(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "layering");
  EXPECT_EQ(out[0].file, "src/obs/bad.h");
  EXPECT_EQ(out[0].line, 2);
  EXPECT_NE(out[0].message.find("module 'obs'"), std::string::npos);
  EXPECT_NE(out[0].message.find("io/cache.h"), std::string::npos);
}

TEST(Layering, IncludeCycleIsReported) {
  const std::vector<LexedFile> files = {
      LexFile("src/io/x.h", "#include \"obs/a.h\"\n"),
      LexFile("src/obs/a.h", "#include \"io/x.h\"\n"),
  };
  std::vector<Finding> out;
  CheckLayering(files, SmallConfig(), &out);
  // The obs -> io back edge plus the explicit cycle report.
  ASSERT_EQ(out.size(), 2u);
  bool saw_cycle = false;
  for (const Finding& f : out) {
    if (f.message.find("include cycle") != std::string::npos) saw_cycle = true;
  }
  EXPECT_TRUE(saw_cycle);
}

TEST(Layering, DeclaredCycleInConfigIsAnError) {
  LintConfig config;
  config.module_deps = {{"a", {"b"}}, {"b", {"a"}}};
  std::vector<Finding> out;
  CheckLayering({}, config, &out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].check, "layering");
  EXPECT_NE(out[0].message.find("cycle"), std::string::npos);
}

TEST(Layering, FileModuleOverrideApplies) {
  LintConfig config = SmallConfig();
  config.module_deps["format"] = {"io"};
  config.file_module_overrides["core/format.h"] = "format";
  // As "core" this include would be fine; as "format" it is, too —
  // but format must not include core.
  const std::vector<LexedFile> files = {
      LexFile("src/core/format.h", "#include \"core/tree.h\"\n"),
  };
  std::vector<Finding> out;
  CheckLayering(files, config, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("module 'format'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// hotpath-alloc
// ---------------------------------------------------------------------------

TEST(HotPathAlloc, CleanFunctionPasses) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "IQ_HOT_NOALLOC\n"
      "double Sum(const double* x, size_t n) {\n"
      "  double a = 0;\n"
      "  for (size_t i = 0; i < n; ++i) a += x[i];\n"
      "  return a;\n"
      "}\n"
      "void Outside() { v.push_back(1); }\n")};
  std::vector<Finding> out;
  CheckHotPathAlloc(files, &out);
  EXPECT_TRUE(out.empty());
}

TEST(HotPathAlloc, NewAndGrowthCallsAreFlagged) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "IQ_HOT_NOALLOC\n"
      "void F(std::vector<int>* out) {\n"
      "  out->push_back(1);\n"
      "  int* p = new int(3);\n"
      "}\n")};
  std::vector<Finding> out;
  CheckHotPathAlloc(files, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].check, "hotpath-alloc");
  EXPECT_EQ(out[0].line, 3);
  EXPECT_NE(out[0].message.find("push_back"), std::string::npos);
  EXPECT_EQ(out[1].line, 4);
  EXPECT_NE(out[1].message.find("operator new"), std::string::npos);
}

TEST(HotPathAlloc, RegionMarkersCoverOnlyTheRegion) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "void F(std::vector<int>* out) {\n"
      "  out->reserve(4);\n"
      "  IQ_HOT_NOALLOC_BEGIN;\n"
      "  out->push_back(1);\n"
      "  IQ_HOT_NOALLOC_END;\n"
      "  out->push_back(2);\n"
      "}\n")};
  std::vector<Finding> out;
  CheckHotPathAlloc(files, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 4);
}

TEST(HotPathAlloc, UnterminatedRegionIsAnError) {
  const std::vector<LexedFile> files = {
      LexFile("src/core/a.cc", "void F() {\n  IQ_HOT_NOALLOC_BEGIN;\n}\n")};
  std::vector<Finding> out;
  CheckHotPathAlloc(files, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("without a matching"), std::string::npos);
}

// ---------------------------------------------------------------------------
// lock-rank
// ---------------------------------------------------------------------------

constexpr char kRankedPair[] =
    "class C {\n"
    " public:\n"
    "  void InOrder() {\n"
    "    MutexLock a(&low_mu_);\n"
    "    MutexLock b(&high_mu_);\n"
    "  }\n"
    "  void Backwards() {\n"
    "    MutexLock a(&high_mu_);\n"
    "    MutexLock b(&low_mu_);\n"
    "  }\n"
    " private:\n"
    "  Mutex low_mu_{IQ_LOCK_RANK(10)};\n"
    "  Mutex high_mu_{IQ_LOCK_RANK(20)};\n"
    "};\n";

TEST(LockRank, OutOfOrderNestedAcquisitionIsFlagged) {
  const std::vector<LexedFile> files = {LexFile("src/core/a.cc", kRankedPair)};
  std::vector<Finding> out;
  CheckLockRank(files, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "lock-rank");
  EXPECT_EQ(out[0].line, 9);
  EXPECT_NE(out[0].message.find("'low_mu_' (rank 10)"), std::string::npos);
  EXPECT_NE(out[0].message.find("'high_mu_' (rank 20"), std::string::npos);
}

TEST(LockRank, SequentialScopesDoNotNest) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "class C {\n"
      "  void F() {\n"
      "    { MutexLock a(&high_mu_); }\n"
      "    { MutexLock b(&low_mu_); }\n"
      "  }\n"
      "  Mutex low_mu_{IQ_LOCK_RANK(10)};\n"
      "  Mutex high_mu_{IQ_LOCK_RANK(20)};\n"
      "};\n")};
  std::vector<Finding> out;
  CheckLockRank(files, &out);
  EXPECT_TRUE(out.empty());
}

TEST(LockRank, OutOfLineMethodResolvesThroughQualifier) {
  const std::vector<LexedFile> files = {
      LexFile("src/core/a.h",
              "class D {\n"
              "  void F();\n"
              "  Mutex first_{IQ_LOCK_RANK(5)};\n"
              "  Mutex second_{IQ_LOCK_RANK(6)};\n"
              "};\n"),
      LexFile("src/core/a.cc",
              "void D::F() {\n"
              "  MutexLock a(&second_);\n"
              "  MutexLock b(&first_);\n"
              "}\n"),
  };
  std::vector<Finding> out;
  CheckLockRank(files, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/core/a.cc");
  EXPECT_EQ(out[0].line, 3);
}

TEST(LockRank, UnrankedMutexMemberIsFlagged) {
  const std::vector<LexedFile> files = {
      LexFile("src/core/a.h", "class E {\n  Mutex mu_;\n};\n")};
  std::vector<Finding> out;
  CheckLockRank(files, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 2);
  EXPECT_NE(out[0].message.find("'E::mu_'"), std::string::npos);
  EXPECT_NE(out[0].message.find("no IQ_LOCK_RANK"), std::string::npos);
}

// ---------------------------------------------------------------------------
// cast-safety
// ---------------------------------------------------------------------------

TEST(CastSafety, FloatToIntegralCastIsFlagged) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "uint32_t F(float rel, uint32_t cells) {\n"
      "  return static_cast<uint32_t>(rel * cells);\n"
      "}\n")};
  std::vector<Finding> out;
  CheckCastSafety(files, LintConfig(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "cast-safety");
  EXPECT_EQ(out[0].line, 2);
}

TEST(CastSafety, FloatFunctionResultIsFlagged) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "int64_t F(double v) { return static_cast<int64_t>(std::floor(v)); }\n")};
  std::vector<Finding> out;
  CheckCastSafety(files, LintConfig(), &out);
  ASSERT_EQ(out.size(), 1u);
}

TEST(CastSafety, IntegerAndWideningCastsAreClean) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "uint32_t A(uint64_t x) { return static_cast<uint32_t>(x); }\n"
      "double B(int x) { return static_cast<double>(x); }\n"
      "size_t C(uint32_t dims) {\n"
      "  return static_cast<size_t>(sizeof(float) * dims);\n"
      "}\n")};
  std::vector<Finding> out;
  CheckCastSafety(files, LintConfig(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(CastSafety, AllowlistedFileIsExempt) {
  const std::vector<LexedFile> files = {LexFile(
      "src/common/cast.h",
      "uint32_t F(double v) { return static_cast<uint32_t>(v); }\n")};
  std::vector<Finding> out;
  CheckCastSafety(files, LintConfig(), &out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// metric-hygiene
// ---------------------------------------------------------------------------

TEST(MetricHygiene, LiteralOutsideRegistryIsFlagged) {
  LintConfig config;
  const std::vector<LexedFile> files = {
      LexFile(config.metric_registry,
              "inline constexpr char kA[] = \"iq_a_total\";\n"),
      LexFile("src/core/u.cc",
              "void F() { Counter(\"iq_a_total\"); G(\"iq_b_total\"); }\n"),
  };
  std::vector<Finding> out;
  CheckMetricHygiene(files, config, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].check, "metric-hygiene");
  EXPECT_NE(out[0].message.find("spelled as a literal"), std::string::npos);
  EXPECT_NE(out[1].message.find("not declared"), std::string::npos);
}

TEST(MetricHygiene, DuplicateAndMalformedRegistryEntries) {
  LintConfig config;
  const std::vector<LexedFile> files = {
      LexFile(config.metric_registry,
              "inline constexpr char kA[] = \"iq_a_total\";\n"
              "inline constexpr char kB[] = \"iq_a_total\";\n"
              "inline constexpr char kC[] = \"iq_Bad_Case\";\n"),
  };
  std::vector<Finding> out;
  CheckMetricHygiene(files, config, &out);
  ASSERT_EQ(out.size(), 2u);
  // Sorted by line by the caller normally; here: duplicate then case.
  EXPECT_NE(out[0].message.find("duplicate"), std::string::npos);
  EXPECT_EQ(out[0].line, 2);
  EXPECT_NE(out[1].message.find("not iq_[a-z0-9_]+"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Suppressions / RunChecks plumbing
// ---------------------------------------------------------------------------

TEST(Suppression, CoversTheNextCodeLine) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "float Source();\n"
      "uint32_t F() {\n"
      "  // iqlint: allow(cast-safety): fixture reason\n"
      "  return static_cast<uint32_t>(Source());\n"
      "}\n")};
  const std::vector<Finding> out = RunAll(files, SmallConfig());
  EXPECT_TRUE(out.empty());
}

TEST(Suppression, DoesNotLeakPastTheNextStatement) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "float Source();\n"
      "uint32_t F() {\n"
      "  // iqlint: allow(cast-safety): first only\n"
      "  uint32_t a = static_cast<uint32_t>(Source());\n"
      "  uint32_t b = static_cast<uint32_t>(Source());\n"
      "  return a + b;\n"
      "}\n")};
  const std::vector<Finding> out = RunAll(files, SmallConfig());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 5);
}

TEST(Suppression, WrongCheckNameDoesNotSuppress) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "float Source();\n"
      "// iqlint: allow(hotpath-alloc): wrong check\n"
      "uint32_t F() { return static_cast<uint32_t>(Source()); }\n")};
  const std::vector<Finding> out = RunAll(files, SmallConfig());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "cast-safety");
}

TEST(Suppression, UnknownCheckNameIsItselfFlagged) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.cc",
      "// iqlint: allow(cast-saftey): typo\n"
      "int x;\n")};
  const std::vector<Finding> out = RunAll(files, SmallConfig());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "suppression");
  EXPECT_NE(out[0].message.find("cast-saftey"), std::string::npos);
}

// ---------------------------------------------------------------------------
// symbol layer
// ---------------------------------------------------------------------------

TEST(Symbols, MembersCarryAnnotations) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.h",
      "class C {\n"
      " public:\n"
      "  int Get() const IQ_REQUIRES(mu_);\n"
      " private:\n"
      "  Mutex mu_{IQ_LOCK_RANK(10)};\n"
      "  int guarded_ IQ_GUARDED_BY(mu_) = 0;\n"
      "  std::atomic<int> hits_{0};\n"
      "  const int dims_ = 4;\n"
      "  int free_ IQ_UNGUARDED(\"ctor only\") = 0;\n"
      "};\n")};
  const SymbolTable table = BuildSymbolTable(files);
  const ClassSymbol* c = table.FindClass("C");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->HasRankedMutex());
  const MemberSymbol* mu = c->FindMember("mu_");
  ASSERT_NE(mu, nullptr);
  EXPECT_TRUE(mu->is_mutex);
  EXPECT_EQ(mu->lock_rank, 10);
  const MemberSymbol* guarded = c->FindMember("guarded_");
  ASSERT_NE(guarded, nullptr);
  EXPECT_EQ(guarded->guarded_by, "mu_");
  ASSERT_NE(c->FindMember("hits_"), nullptr);
  EXPECT_TRUE(c->FindMember("hits_")->is_atomic);
  ASSERT_NE(c->FindMember("dims_"), nullptr);
  EXPECT_TRUE(c->FindMember("dims_")->is_const);
  ASSERT_NE(c->FindMember("free_"), nullptr);
  EXPECT_TRUE(c->FindMember("free_")->unguarded_ok);
  ASSERT_EQ(c->methods.count("Get"), 1u);
  EXPECT_EQ(c->methods.at("Get").requires_locks.count("mu_"), 1u);
}

TEST(Symbols, OutOfLineBodyAttributesToItsClass) {
  const std::vector<LexedFile> files = {
      LexFile("src/core/a.h", "class C {\n  void F();\n  int x_ = 0;\n};\n"),
      LexFile("src/core/a.cc", "void C::F() { x_ = 1; }\n"),
  };
  const SymbolTable table = BuildSymbolTable(files);
  ASSERT_EQ(table.functions.size(), 1u);
  EXPECT_EQ(table.functions[0].class_name, "C");
  EXPECT_EQ(table.functions[0].method_name, "F");
  EXPECT_FALSE(table.functions[0].is_ctor_or_dtor);
}

TEST(Symbols, TypestateProtocolIsRecorded) {
  const std::vector<LexedFile> files = {LexFile(
      "src/quant/w.h",
      "class Writer {\n"
      " public:\n"
      "  IQ_TYPESTATE(\"open\");\n"
      "  IQ_TS_FINAL(\"flushed\");\n"
      "  void Put(int v) IQ_TS_REQUIRES(\"open\");\n"
      "  void Flush() IQ_TS_TRANSITION(\"open\", \"flushed\");\n"
      "};\n")};
  const SymbolTable table = BuildSymbolTable(files);
  const ClassSymbol* c = table.FindClass("Writer");
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(c->has_typestate);
  EXPECT_EQ(c->initial_state, "open");
  EXPECT_EQ(c->final_state, "flushed");
  ASSERT_EQ(c->methods.count("Put"), 1u);
  EXPECT_EQ(c->methods.at("Put").ts_requires.count("open"), 1u);
  ASSERT_EQ(c->methods.count("Flush"), 1u);
  EXPECT_EQ(c->methods.at("Flush").ts_from, "open");
  EXPECT_EQ(c->methods.at("Flush").ts_to, "flushed");
}

// ---------------------------------------------------------------------------
// guarded-by-coverage
// ---------------------------------------------------------------------------

TEST(GuardedByCoverage, UnannotatedMemberOfRankedClassIsFlagged) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.h",
      "class C {\n"
      "  Mutex mu_{IQ_LOCK_RANK(10)};\n"
      "  int counter_ = 0;\n"
      "};\n")};
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckGuardedByCoverage(table, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "guarded-by-coverage");
  EXPECT_EQ(out[0].line, 3);
  EXPECT_NE(out[0].message.find("'C::counter_'"), std::string::npos);
}

TEST(GuardedByCoverage, AnnotatedAtomicConstAndExemptAreClean) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.h",
      "class C {\n"
      "  Mutex mu_{IQ_LOCK_RANK(10)};\n"
      "  CondVar cv_;\n"
      "  int counter_ IQ_GUARDED_BY(mu_) = 0;\n"
      "  std::atomic<int> hits_{0};\n"
      "  const int dims_ = 4;\n"
      "  int setup_ IQ_UNGUARDED(\"ctor only\") = 0;\n"
      "};\n")};
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckGuardedByCoverage(table, &out);
  EXPECT_TRUE(out.empty());
}

TEST(GuardedByCoverage, ClassWithoutRankedMutexIsIgnored) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.h", "class C {\n  int counter_ = 0;\n};\n")};
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckGuardedByCoverage(table, &out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// lock-set
// ---------------------------------------------------------------------------

constexpr char kGuardedClass[] =
    "class C {\n"
    " public:\n"
    "  void Locked() { MutexLock lock(&mu_); value_ = 1; }\n"
    "  int Annotated() const IQ_REQUIRES(mu_) { return value_; }\n"
    "  int Bare() const { return value_; }\n"
    " private:\n"
    "  mutable Mutex mu_{IQ_LOCK_RANK(10)};\n"
    "  int value_ IQ_GUARDED_BY(mu_) = 0;\n"
    "};\n";

TEST(LockSet, UnlockedAccessIsFlaggedLockedAndAnnotatedAreNot) {
  const std::vector<LexedFile> files = {
      LexFile("src/core/a.h", kGuardedClass)};
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckLockSet(table, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "lock-set");
  EXPECT_EQ(out[0].line, 5);
  EXPECT_NE(out[0].message.find("'C::value_'"), std::string::npos);
  EXPECT_NE(out[0].message.find("'C::Bare'"), std::string::npos);
}

TEST(LockSet, OutOfLineDefinitionUsesDeclarationAnnotations) {
  const std::vector<LexedFile> files = {
      LexFile("src/core/a.h",
              "class C {\n"
              "  int Get() const IQ_REQUIRES(mu_);\n"
              "  int Peek() const;\n"
              "  mutable Mutex mu_{IQ_LOCK_RANK(10)};\n"
              "  int value_ IQ_GUARDED_BY(mu_) = 0;\n"
              "};\n"),
      LexFile("src/core/a.cc",
              "int C::Get() const { return value_; }\n"
              "int C::Peek() const { return value_; }\n"),
  };
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckLockSet(table, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/core/a.cc");
  EXPECT_EQ(out[0].line, 2);
  EXPECT_NE(out[0].message.find("'C::Peek'"), std::string::npos);
}

TEST(LockSet, ScopeEndReleasesTheLock) {
  const std::vector<LexedFile> files = {LexFile(
      "src/core/a.h",
      "class C {\n"
      "  void F() {\n"
      "    { MutexLock lock(&mu_); value_ = 1; }\n"
      "    value_ = 2;\n"
      "  }\n"
      "  Mutex mu_{IQ_LOCK_RANK(10)};\n"
      "  int value_ IQ_GUARDED_BY(mu_) = 0;\n"
      "};\n")};
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckLockSet(table, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 4);
}

// ---------------------------------------------------------------------------
// typestate
// ---------------------------------------------------------------------------

constexpr char kWriterProtocol[] =
    "class Writer {\n"
    " public:\n"
    "  IQ_TYPESTATE(\"open\");\n"
    "  IQ_TS_FINAL(\"flushed\");\n"
    "  void Put(int v) IQ_TS_REQUIRES(\"open\");\n"
    "  void Flush() IQ_TS_TRANSITION(\"open\", \"flushed\");\n"
    "};\n";

TEST(Typestate, UseAfterFinalTransitionIsFlagged) {
  const std::vector<LexedFile> files = {
      LexFile("src/quant/w.h", kWriterProtocol),
      LexFile("src/core/u.cc",
              "void F() {\n"
              "  Writer w;\n"
              "  w.Flush();\n"
              "  w.Put(1);\n"
              "}\n"),
  };
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckTypestate(table, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "typestate");
  EXPECT_EQ(out[0].line, 4);
  EXPECT_NE(out[0].message.find("requires state 'open'"), std::string::npos);
  EXPECT_NE(out[0].message.find("'flushed'"), std::string::npos);
}

TEST(Typestate, LeavingScopeBeforeFinalStateIsFlagged) {
  const std::vector<LexedFile> files = {
      LexFile("src/quant/w.h", kWriterProtocol),
      LexFile("src/core/u.cc",
              "void F() {\n"
              "  Writer w;\n"
              "  w.Put(1);\n"
              "}\n"),
  };
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckTypestate(table, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("leaves scope in state 'open'"),
            std::string::npos);
}

TEST(Typestate, CompleteProtocolIsClean) {
  const std::vector<LexedFile> files = {
      LexFile("src/quant/w.h", kWriterProtocol),
      LexFile("src/core/u.cc",
              "void F() {\n"
              "  Writer w;\n"
              "  w.Put(1);\n"
              "  w.Flush();\n"
              "}\n"),
  };
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckTypestate(table, &out);
  EXPECT_TRUE(out.empty());
}

TEST(Typestate, QueryBeforeBindIsFlagged) {
  const std::vector<LexedFile> files = {
      LexFile("src/quant/k.h",
              "class Kernel {\n"
              " public:\n"
              "  IQ_TYPESTATE(\"unbound\");\n"
              "  void Bind() IQ_TS_TRANSITION(\"*\", \"bound\");\n"
              "  void Query() IQ_TS_REQUIRES(\"bound\");\n"
              "};\n"),
      LexFile("src/core/u.cc",
              "void F() {\n"
              "  Kernel k;\n"
              "  k.Query();\n"
              "  k.Bind();\n"
              "  k.Query();\n"
              "}\n"),
  };
  const SymbolTable table = BuildSymbolTable(files);
  std::vector<Finding> out;
  CheckTypestate(table, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 3);
  EXPECT_NE(out[0].message.find("in state 'unbound'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// float-determinism
// ---------------------------------------------------------------------------

TEST(FloatDeterminism, FmaInContractFileIsFlagged) {
  const std::vector<LexedFile> files = {LexFile(
      "src/quant/filter_kernel.cc",
      "double F(double a, double b, double c) {\n"
      "  return std::fma(a, b, c);\n"
      "}\n")};
  std::vector<Finding> out;
  CheckFloatDeterminism(files, LintConfig(), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "float-determinism");
  EXPECT_EQ(out[0].line, 2);
}

TEST(FloatDeterminism, FmaOutsideContractFilesIsAllowed) {
  const std::vector<LexedFile> files = {LexFile(
      "src/costmodel/cost_model.cc",
      "double F(double a, double b, double c) {\n"
      "  return std::fma(a, b, c);\n"
      "}\n")};
  std::vector<Finding> out;
  CheckFloatDeterminism(files, LintConfig(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(FloatDeterminism, BannedFlagOnContractTargetIsFlagged) {
  LintConfig config;
  config.build_files.emplace_back(
      "src/CMakeLists.txt",
      "add_library(iq_quant filter_kernel.cc)\n"
      "target_compile_options(iq_quant PRIVATE -mfma)\n");
  std::vector<Finding> out;
  CheckFloatDeterminism({}, config, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].check, "float-determinism");
  EXPECT_EQ(out[0].file, "src/CMakeLists.txt");
  EXPECT_EQ(out[0].line, 2);
  EXPECT_NE(out[0].message.find("-mfma"), std::string::npos);
}

TEST(FloatDeterminism, BenignFlagsOnContractTargetAreClean) {
  LintConfig config;
  config.build_files.emplace_back(
      "src/CMakeLists.txt",
      "add_library(iq_quant filter_kernel.cc)\n"
      "target_compile_options(iq_quant PRIVATE -O2 -Wall)\n");
  std::vector<Finding> out;
  CheckFloatDeterminism({}, config, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RunChecks, EnabledSetRestrictsChecks) {
  const std::vector<LexedFile> files = {LexFile(
      "src/obs/a.h",
      "#include \"io/x.h\"\n"
      "float Source();\n"
      "uint32_t F() { return static_cast<uint32_t>(Source()); }\n")};
  const std::vector<Finding> layering_only =
      RunChecks(files, SmallConfig(), {"layering"});
  ASSERT_EQ(layering_only.size(), 1u);
  EXPECT_EQ(layering_only[0].check, "layering");
  const std::vector<Finding> both = RunAll(files, SmallConfig());
  EXPECT_EQ(both.size(), 2u);
}

TEST(RunChecks, FindingsAreSortedByFileAndLine) {
  const std::vector<LexedFile> files = {
      LexFile("src/obs/z.h", "#include \"io/x.h\"\n"),
      LexFile("src/obs/a.h", "#include \"io/x.h\"\n"),
  };
  const std::vector<Finding> out = RunAll(files, SmallConfig());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].file, "src/obs/a.h");
  EXPECT_EQ(out[1].file, "src/obs/z.h");
}

}  // namespace
}  // namespace iqlint
