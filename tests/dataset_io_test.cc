#include "data/dataset_io.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

TEST(DatasetIoTest, RoundTrip) {
  MemoryStorage storage;
  const Dataset original = GenerateUniform(257, 9, 5);
  ASSERT_TRUE(WriteDataset(storage, "d", original).ok());
  auto loaded = ReadDataset(storage, "d");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  ASSERT_EQ(loaded->dims(), original.dims());
  for (size_t r = 0; r < original.size(); ++r) {
    for (size_t i = 0; i < original.dims(); ++i) {
      EXPECT_EQ((*loaded)[r][i], original[r][i]);
    }
  }
}

TEST(DatasetIoTest, EmptyDataset) {
  MemoryStorage storage;
  ASSERT_TRUE(WriteDataset(storage, "e", Dataset(4)).ok());
  auto loaded = ReadDataset(storage, "e");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->dims(), 4u);
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  MemoryStorage storage;
  EXPECT_TRUE(ReadDataset(storage, "missing").status().IsNotFound());
}

TEST(DatasetIoTest, BadMagicIsCorruption) {
  MemoryStorage storage;
  auto file = storage.Create("bad");
  ASSERT_TRUE(file.ok());
  const char junk[64] = "not a dataset";
  ASSERT_TRUE((*file)->Write(0, sizeof(junk), junk).ok());
  EXPECT_TRUE(ReadDataset(storage, "bad").status().IsCorruption());
}

TEST(DatasetIoTest, TruncatedPayloadIsCorruption) {
  MemoryStorage storage;
  const Dataset original = GenerateUniform(100, 4, 5);
  ASSERT_TRUE(WriteDataset(storage, "t", original).ok());
  auto file = storage.Open("t");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Resize((*file)->Size() / 2).ok());
  EXPECT_TRUE(ReadDataset(storage, "t").status().IsCorruption());
}

}  // namespace
}  // namespace iq
