#include "xtree/x_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

class XTreeTest : public ::testing::Test {
 protected:
  XTreeTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(XTreeTest, BuildAndExactSelfQueries) {
  const Dataset data = GenerateUniform(3000, 6, 1);
  auto tree = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->size(), 3000u);
  const auto stats = (*tree)->ComputeStats();
  EXPECT_GT(stats.num_data_pages, 1u);
  EXPECT_GE(stats.height, 2u);
  for (size_t i = 0; i < data.size(); i += 211) {
    auto nn = (*tree)->NearestNeighbor(data[i]);
    ASSERT_TRUE(nn.ok());
    EXPECT_EQ(nn->distance, 0.0);
  }
}

TEST_F(XTreeTest, KnnMatchesBruteForce) {
  Dataset data = GenerateCadLike(2500, 8, 2);
  const Dataset queries = data.TakeTail(15);
  auto tree = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<double> dists;
    for (size_t i = 0; i < data.size(); ++i) {
      dists.push_back(Distance(queries[qi], data[i], Metric::kL2));
    }
    std::sort(dists.begin(), dists.end());
    auto got = (*tree)->KNearestNeighbors(queries[qi], 7);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 7u);
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_NEAR((*got)[i].distance, dists[i], 1e-6);
    }
  }
}

TEST_F(XTreeTest, RangeAndWindowMatchBruteForce) {
  Dataset data = GenerateWeatherLike(2000, 9, 3);
  const Dataset queries = data.TakeTail(5);
  auto tree = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const double radius = 0.15;
    std::set<PointId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (Distance(queries[qi], data[i], Metric::kL2) <= radius) {
        expected.insert(static_cast<PointId>(i));
      }
    }
    auto got = (*tree)->RangeSearch(queries[qi], radius);
    ASSERT_TRUE(got.ok());
    std::set<PointId> got_ids;
    for (const Neighbor& r : *got) got_ids.insert(r.id);
    EXPECT_EQ(got_ids, expected);
  }
  const Mbr window = Mbr::FromBounds(std::vector<float>(9, 0.3f),
                                     std::vector<float>(9, 0.7f));
  std::set<PointId> expected;
  for (size_t i = 0; i < data.size(); ++i) {
    if (window.Contains(data[i])) expected.insert(static_cast<PointId>(i));
  }
  auto got = (*tree)->WindowQuery(window);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::set<PointId>(got->begin(), got->end()), expected);
}

TEST_F(XTreeTest, OpenRoundTrip) {
  const Dataset data = GenerateUniform(1500, 5, 4);
  {
    auto tree = XTree::Build(data, storage_, "x", disk_, {});
    ASSERT_TRUE(tree.ok());
  }
  auto reopened = XTree::Open(storage_, "x", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 1500u);
  auto nn = (*reopened)->NearestNeighbor(data[3]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(XTreeTest, DynamicInsertsStayCorrect) {
  Dataset initial = GenerateUniform(500, 6, 5);
  auto tree = XTree::Build(initial, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  Dataset reference = initial;
  const Dataset extra = GenerateUniform(2500, 6, 6);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        (*tree)->Insert(static_cast<PointId>(500 + i), extra[i]).ok());
    reference.Append(extra[i]);
  }
  EXPECT_EQ((*tree)->size(), 3000u);
  const Dataset queries = GenerateUniform(10, 6, 7);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    double best = 1e300;
    for (size_t i = 0; i < reference.size(); ++i) {
      best = std::min(best, Distance(queries[qi], reference[i],
                                     Metric::kL2));
    }
    auto nn = (*tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(nn.ok());
    EXPECT_NEAR(nn->distance, best, 1e-6);
  }
}

TEST_F(XTreeTest, InsertFromEmpty) {
  auto tree = XTree::Build(Dataset(4), storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset points = GenerateUniform(800, 4, 8);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE((*tree)->Insert(static_cast<PointId>(i), points[i]).ok());
  }
  EXPECT_EQ((*tree)->size(), 800u);
  auto nn = (*tree)->NearestNeighbor(points[123]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(XTreeTest, SupernodesAppearOnPathologicalSplits) {
  // High-dimensional strongly-overlapping clusters make overlap-free
  // directory splits impossible: the X-tree must fall back to
  // supernodes rather than degrade the directory.
  XTree::Options options;
  options.max_overlap = 0.0;  // every split is "too much overlap"
  auto tree = XTree::Build(Dataset(8), storage_, "x", disk_, options);
  ASSERT_TRUE(tree.ok());
  const Dataset points = GenerateUniform(4000, 8, 9);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE((*tree)->Insert(static_cast<PointId>(i), points[i]).ok());
  }
  EXPECT_GT((*tree)->ComputeStats().num_supernodes, 0u);
  // Still correct.
  auto nn = (*tree)->NearestNeighbor(points[42]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(XTreeTest, RemoveDeletesAndTightens) {
  Dataset data = GenerateUniform(1200, 5, 11);
  auto tree = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  Dataset reference(5);
  for (size_t i = 0; i < data.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE((*tree)->Remove(static_cast<PointId>(i), data[i]).ok())
          << "removing " << i;
    } else {
      reference.Append(data[i]);
    }
  }
  EXPECT_EQ((*tree)->size(), reference.size());
  // Removed points are really gone and remaining queries stay exact.
  const Dataset queries = GenerateUniform(10, 5, 12);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    double best = 1e300;
    for (size_t i = 0; i < reference.size(); ++i) {
      best = std::min(best,
                      Distance(queries[qi], reference[i], Metric::kL2));
    }
    auto nn = (*tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(nn.ok());
    EXPECT_NEAR(nn->distance, best, 1e-6);
  }
}

TEST_F(XTreeTest, RemoveMissingIsNotFound) {
  Dataset data = GenerateUniform(100, 4, 13);
  auto tree = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> center(4, 0.5f);
  EXPECT_TRUE((*tree)->Remove(9999, center).IsNotFound());
  const std::vector<float> wrong(5, 0.5f);
  EXPECT_TRUE((*tree)->Remove(0, wrong).IsInvalidArgument());
}

TEST_F(XTreeTest, RemoveAllThenReinsert) {
  Dataset data = GenerateUniform(300, 3, 14);
  auto tree = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE((*tree)->Remove(static_cast<PointId>(i), data[i]).ok());
  }
  EXPECT_EQ((*tree)->size(), 0u);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE((*tree)->Insert(static_cast<PointId>(i), data[i]).ok());
  }
  EXPECT_EQ((*tree)->size(), 300u);
  auto nn = (*tree)->NearestNeighbor(data[7]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(XTreeTest, ChargesIoPerQuery) {
  const Dataset data = GenerateUniform(5000, 8, 10);
  auto tree = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(tree.ok());
  disk_.ResetStats();
  const std::vector<float> q(8, 0.4f);
  ASSERT_TRUE((*tree)->NearestNeighbor(q).ok());
  EXPECT_GT(disk_.stats().seeks, 1u);
  EXPECT_GT(disk_.stats().io_time_s, 0.0);
}

}  // namespace
}  // namespace iq
