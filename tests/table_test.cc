#include "common/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace iq {
namespace {

TEST(TableTest, AlignsColumns) {
  Table table({"dim", "IQ-tree", "Scan"});
  table.AddRow({"4", "0.10", "0.50"});
  table.AddRow({"16", "1.00", "0.55"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("dim"), std::string::npos);
  EXPECT_NE(out.find("IQ-tree"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Every line of a well-formed table ends without trailing spaces.
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) {
      EXPECT_NE(line.back(), ' ') << "line: '" << line << "'";
    }
  }
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find('1'), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Num(0.000123, 4), "0.0001");
}

}  // namespace
}  // namespace iq
