// Slow-query log: threshold policies (absolute and adaptive-quantile),
// ring eviction, the truncated flag for capped tracers (the 64k
// span-cap interaction), the JSON dump, and end-to-end capture through
// IqTree queries and a ParallelQueryRunner batch.

#include "obs/slow_log.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/parallel_query_runner.h"
#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"
#include "obs/trace.h"

namespace iq {
namespace {

using obs::CostBreakdown;
using obs::SlowLogOptions;
using obs::SlowQueryLog;
using obs::SlowQueryRecord;
using obs::SpanRecord;

/// A minimal self-contained query trace whose observed total is `io_s`
/// (one root "knn" span with one "batch" child carrying the time).
std::vector<SpanRecord> MakeTrace(double io_s) {
  std::vector<SpanRecord> spans(2);
  spans[0].name = "knn";
  spans[0].parent = obs::kNoSpan;
  spans[1].name = "batch";
  spans[1].parent = 0;
  spans[1].attrs.emplace_back("io_s", io_s);
  return spans;
}

TEST(SlowQueryLogTest, AbsoluteThresholdFiltersCheapQueries) {
  SlowLogOptions options;
  options.absolute_threshold_s = 1.0;
  SlowQueryLog log(options);
  log.Offer(MakeTrace(0.5), 0, CostBreakdown{}, 0);
  log.Offer(MakeTrace(2.0), 0, CostBreakdown{}, 0);
  if (!obs::kEnabled) {
    EXPECT_EQ(log.offered(), 0u);
    EXPECT_TRUE(log.Snapshot().empty());
    return;
  }
  EXPECT_EQ(log.offered(), 2u);
  EXPECT_EQ(log.retained(), 1u);
  EXPECT_DOUBLE_EQ(log.current_threshold_s(), 1.0);
  const std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].query_index, 1u);
  EXPECT_EQ(records[0].kind, "knn");
  EXPECT_DOUBLE_EQ(records[0].observed_io_s, 2.0);
  EXPECT_FALSE(records[0].truncated);
}

TEST(SlowQueryLogTest, RingEvictsOldestBeyondCapacity) {
  if (!obs::kEnabled) return;
  SlowLogOptions options;
  options.capacity = 2;
  options.absolute_threshold_s = 0.001;
  SlowQueryLog log(options);
  for (int i = 0; i < 5; ++i) {
    log.Offer(MakeTrace(1.0), 0, CostBreakdown{}, 0);
  }
  EXPECT_EQ(log.retained(), 5u);  // counts every retention, not the ring
  const std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].query_index, 3u);  // oldest-first, 0..2 evicted
  EXPECT_EQ(records[1].query_index, 4u);
}

TEST(SlowQueryLogTest, AdaptiveQuantileRetainsOutliersOnly) {
  if (!obs::kEnabled) return;
  SlowLogOptions options;
  options.quantile = 0.75;
  options.min_samples = 8;
  SlowQueryLog log(options);
  // Warm-up: below min_samples everything clears the (zero) threshold.
  for (int i = 0; i < 8; ++i) {
    log.Offer(MakeTrace(0.01), 0, CostBreakdown{}, 0);
  }
  EXPECT_EQ(log.retained(), 8u);
  // Warmed: the p75 of the io_s window sits at the 0.01 bucket bound,
  // so an equal-cost query no longer clears it...
  EXPECT_GT(log.current_threshold_s(), 0.0);
  log.Offer(MakeTrace(0.005), 0, CostBreakdown{}, 0);
  EXPECT_EQ(log.retained(), 8u);
  // ...but a 100x outlier does.
  log.Offer(MakeTrace(1.0), 0, CostBreakdown{}, 0);
  EXPECT_EQ(log.retained(), 9u);
  const std::vector<SlowQueryRecord> records = log.Snapshot();
  EXPECT_DOUBLE_EQ(records.back().observed_io_s, 1.0);
}

TEST(SlowQueryLogTest, DroppedSpansMarkRecordTruncatedIntoJson) {
  if (!obs::kEnabled) return;
  SlowLogOptions options;
  options.absolute_threshold_s = 0.001;
  SlowQueryLog log(options);
  log.Offer(MakeTrace(1.0), 0, CostBreakdown{1.0, 2.0, 3.0},
            /*dropped_spans=*/7);
  const std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].truncated);
  const std::string json = obs::SlowLogToJson(records);
  EXPECT_NE(json.find("\"truncated\":true"), std::string::npos);
  EXPECT_NE(json.find("\"predicted\":{\"t1\":1"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":["), std::string::npos);
}

TEST(SlowQueryLogTest, SubtreeExtractionRemapsParents) {
  if (!obs::kEnabled) return;
  // Shared-tracer layout: two query roots, children interleaved.
  std::vector<SpanRecord> spans(4);
  spans[0].name = "knn";
  spans[0].parent = obs::kNoSpan;
  spans[1].name = "range";
  spans[1].parent = obs::kNoSpan;
  spans[2].name = "batch";
  spans[2].parent = 1;
  spans[2].attrs.emplace_back("io_s", 5.0);
  spans[3].name = "dir_scan";
  spans[3].parent = 0;
  spans[3].attrs.emplace_back("io_s", 0.5);
  SlowLogOptions options;
  options.absolute_threshold_s = 0.001;
  SlowQueryLog log(options);
  log.Offer(spans, 1, CostBreakdown{}, 0);  // query B only
  const std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, "range");
  EXPECT_DOUBLE_EQ(records[0].observed_io_s, 5.0);
  // Only the "range" subtree survives, with remapped parent ids.
  ASSERT_EQ(records[0].spans.size(), 2u);
  EXPECT_EQ(records[0].spans[0].name, "range");
  EXPECT_EQ(records[0].spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(records[0].spans[1].name, "batch");
  EXPECT_EQ(records[0].spans[1].parent, 0u);
}

class SlowLogQueryTest : public ::testing::Test {
 protected:
  void BuildTree(size_t n, size_t dims, unsigned seed) {
    data_ = GenerateCadLike(n + 16, dims, seed);
    queries_ = data_.TakeTail(16);
    disk_ = std::make_unique<DiskModel>(DiskParameters{0.010, 0.002, 2048});
    auto tree = IqTree::Build(data_, storage_, "t", *disk_, {});
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    tree_ = std::move(tree).value();
  }

  Dataset data_{1};
  Dataset queries_{1};
  MemoryStorage storage_;
  std::unique_ptr<DiskModel> disk_;
  std::unique_ptr<IqTree> tree_;
};

TEST_F(SlowLogQueryTest, CapturesQueriesWithoutCallerTracer) {
  BuildTree(2000, 8, 3);
  SlowLogOptions options;
  options.absolute_threshold_s = 1e-9;  // retain everything
  SlowQueryLog log(options);
  IqSearchOptions search;
  search.slow_log = &log;  // no tracer: the search makes a private one
  auto hits = tree_->KNearestNeighbors(queries_[0], 3, search);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  if (!obs::kEnabled) {
    EXPECT_TRUE(log.Snapshot().empty());
    return;
  }
  const std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, "knn");
  EXPECT_GT(records[0].observed_io_s, 0.0);
  EXPECT_GT(records[0].predicted.total(), 0.0);  // tree's PredictCost
  EXPECT_FALSE(records[0].spans.empty());
  EXPECT_FALSE(records[0].truncated);
  // Slow-logging must not change results.
  auto plain = tree_->KNearestNeighbors(queries_[0], 3);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->size(), hits->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*plain)[i].id, (*hits)[i].id);
  }
}

TEST_F(SlowLogQueryTest, SpanCapMarksCapturedQueryTruncated) {
  BuildTree(2000, 8, 5);
  obs::QueryTracer tiny_tracer(/*max_spans=*/4);
  SlowLogOptions options;
  options.absolute_threshold_s = 1e-9;
  SlowQueryLog log(options);
  IqSearchOptions search;
  search.tracer = &tiny_tracer;
  search.slow_log = &log;
  auto hits = tree_->KNearestNeighbors(queries_[0], 3, search);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  if (!obs::kEnabled) return;
  ASSERT_GT(tiny_tracer.dropped(), 0u) << "query must overflow 4 spans";
  const std::vector<SlowQueryRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].truncated);
}

TEST_F(SlowLogQueryTest, ParallelBatchSharesOneLog) {
  BuildTree(3000, 8, 9);
  SlowLogOptions options;
  options.absolute_threshold_s = 1e-9;
  options.capacity = 64;
  SlowQueryLog log(options);
  IqSearchOptions search;
  search.slow_log = &log;
  ParallelQueryRunner runner(*tree_, 4);
  auto batch = runner.KnnBatch(queries_, 3, search);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  if (!obs::kEnabled) {
    EXPECT_EQ(log.offered(), 0u);
    return;
  }
  EXPECT_EQ(log.offered(), queries_.size());
  EXPECT_EQ(log.retained(), queries_.size());
  for (const SlowQueryRecord& record : log.Snapshot()) {
    EXPECT_EQ(record.kind, "knn");
    EXPECT_GT(record.observed_io_s, 0.0);
    EXPECT_FALSE(record.spans.empty());
  }
}

}  // namespace
}  // namespace iq
