// Random-bytes robustness: feeding arbitrary garbage to every decoder
// and every Open() path must produce Status errors (or, for headerless
// formats, garbage-but-bounded data) — never crashes, hangs or
// out-of-bounds reads. Poor man's fuzzing, deterministic via seeds.

#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "btree/b_plus_tree.h"
#include "common/random.h"
#include "core/format.h"
#include "core/iq_tree.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "pyramid/pyramid_technique.h"
#include "quant/bit_stream.h"
#include "rstar/r_star_tree.h"
#include "scan/seq_scan.h"
#include "vafile/va_file.h"
#include "xtree/x_tree.h"

namespace iq {
namespace {

std::vector<uint8_t> RandomBytes(Rng& rng, size_t size) {
  std::vector<uint8_t> bytes(size);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.Index(256));
  }
  return bytes;
}

TEST(DecoderRobustnessTest, QuantPageCodecOnGarbage) {
  Rng rng(1);
  const QuantPageCodec codec(8, 2048);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> page = RandomBytes(rng, 2048);
    auto header = codec.DecodeHeader(page.data());
    if (!header.ok()) continue;  // rejected, fine
    // If the header happens to parse, the decoders must still stay in
    // bounds and only ever fail with Status.
    std::vector<uint32_t> cells;
    std::vector<PointId> ids;
    std::vector<float> coords;
    if (header->bits >= kExactBits) {
      (void)codec.DecodeExact(page.data(), &ids, &coords);
    } else {
      (void)codec.DecodeCells(page.data(), &cells);
    }
  }
}

TEST(DecoderRobustnessTest, ExactPageCodecOnGarbage) {
  Rng rng(2);
  const ExactPageCodec codec(5);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t size = rng.Index(300);
    std::vector<uint8_t> bytes = RandomBytes(rng, size + 1);
    std::vector<PointId> ids;
    std::vector<float> coords;
    (void)codec.Decode(bytes.data(), size, &ids, &coords);
  }
}

TEST(DecoderRobustnessTest, AllOpensRejectGarbageFiles) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    MemoryStorage storage;
    DiskModel disk(DiskParameters{0.010, 0.002, 2048});
    // Write garbage under every file name each structure expects.
    for (const char* name :
         {"g.dir", "g.qpg", "g.dat", "g.xdir", "g.xpg", "g.rdir", "g.rpg",
          "g.vaa", "g.vav", "g.scn", "g.bpd", "g.bpl", "g.pyr"}) {
      auto file = storage.Create(name);
      ASSERT_TRUE(file.ok());
      const auto bytes = RandomBytes(rng, 64 + rng.Index(4096));
      ASSERT_TRUE((*file)->Write(0, bytes.size(), bytes.data()).ok());
    }
    EXPECT_FALSE(IqTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(XTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(RStarTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(VaFile::Open(storage, "g", disk).ok());
    EXPECT_FALSE(SeqScan::Open(storage, "g", disk).ok());
    EXPECT_FALSE(BPlusTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(PyramidTechnique::Open(storage, "g", disk).ok());
    EXPECT_FALSE(ReadDataset(storage, "g.dir").ok());
  }
}

// --- Targeted corruption of real index files -------------------------
//
// Unlike the random-bytes tests above, these take a correctly built
// index and damage one specific field, asserting the checked decode
// path reports a clean Status (and stays in bounds under ASan).

constexpr uint32_t kDirHeaderBytes = 48;

/// Builds a small index whose pages are quantized (g < 32, so they have
/// third-level extents) and returns its directory entries.
std::vector<DirEntry> BuildQuantizedIndex(MemoryStorage* storage,
                                          DiskModel* disk) {
  const Dataset data = GenerateUniform(3000, 4, 11);
  IqTree::Options options;
  options.fixed_quant_bits = 8;  // force g < 32 so pages carry extents
  auto tree = IqTree::Build(data, *storage, "idx", *disk, options);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  return (*tree)->directory();
}

/// Byte offset of directory entry `index` inside the .dir file.
uint64_t EntryOffset(size_t index, size_t dims) {
  return kDirHeaderBytes + index * DirEntryBytes(dims);
}

/// Index of the first entry stored at a quantized level (has an extent).
size_t FirstQuantizedEntry(const std::vector<DirEntry>& dir) {
  for (size_t i = 0; i < dir.size(); ++i) {
    if (dir[i].quant_bits < kExactBits) return i;
  }
  ADD_FAILURE() << "no quantized entry in test index";
  return 0;
}

TEST(CorruptIndexTest, TruncatedDirectoryFileRejected) {
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  const auto dir = BuildQuantizedIndex(&storage, &disk);
  ASSERT_GE(dir.size(), 2u);
  auto file = storage.Open("idx.dir");
  ASSERT_TRUE(file.ok());
  const uint64_t full = (*file)->Size();
  // Cut before the header, inside the header, at a whole-entry boundary
  // minus one, and mid-entry: every truncation must be a clean error.
  for (const uint64_t cut :
       {uint64_t{0}, uint64_t{7}, uint64_t{kDirHeaderBytes - 1},
        EntryOffset(1, 4) - 1, EntryOffset(1, 4) + 13, full - 1}) {
    ASSERT_TRUE((*file)->Resize(cut).ok());
    auto opened = IqTree::Open(storage, "idx", disk);
    EXPECT_FALSE(opened.ok()) << "cut at " << cut;
    EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
  }
}

TEST(CorruptIndexTest, OutOfRangeQuantBitsRejected) {
  for (const uint32_t bad_bits : {0u, 3u, 7u, 33u, 0xFFFFFFFFu}) {
    MemoryStorage storage;
    DiskModel disk(DiskParameters{0.010, 0.002, 2048});
    const auto dir = BuildQuantizedIndex(&storage, &disk);
    auto file = storage.Open("idx.dir");
    ASSERT_TRUE(file.ok());
    // quant_bits sits after the MBR (2*4*dims bytes) and two uint32s.
    const uint64_t pos = EntryOffset(0, 4) + 2 * sizeof(float) * 4 +
                         2 * sizeof(uint32_t);
    ASSERT_TRUE((*file)->Write(pos, sizeof(bad_bits), &bad_bits).ok());
    auto opened = IqTree::Open(storage, "idx", disk);
    EXPECT_FALSE(opened.ok()) << "bits " << bad_bits;
    EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
  }
}

TEST(CorruptIndexTest, OversizedExtentOffsetRejected) {
  // Offsets that point past .dat, including one that would wrap uint64
  // in a naive offset+length check.
  for (const uint64_t bad_offset :
       {uint64_t{1} << 40, ~uint64_t{0} - 256, ~uint64_t{0}}) {
    MemoryStorage storage;
    DiskModel disk(DiskParameters{0.010, 0.002, 2048});
    const auto dir = BuildQuantizedIndex(&storage, &disk);
    const size_t victim = FirstQuantizedEntry(dir);
    auto file = storage.Open("idx.dir");
    ASSERT_TRUE(file.ok());
    const uint64_t pos = EntryOffset(victim, 4) + 2 * sizeof(float) * 4 +
                         4 * sizeof(uint32_t);
    ASSERT_TRUE((*file)->Write(pos, sizeof(bad_offset), &bad_offset).ok());
    auto opened = IqTree::Open(storage, "idx", disk);
    EXPECT_FALSE(opened.ok()) << "offset " << bad_offset;
    EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
  }
}

TEST(CorruptIndexTest, OversizedExtentLengthRejected) {
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  const auto dir = BuildQuantizedIndex(&storage, &disk);
  const size_t victim = FirstQuantizedEntry(dir);
  auto file = storage.Open("idx.dir");
  ASSERT_TRUE(file.ok());
  const uint64_t bad_length = ~uint64_t{0} - 64;
  const uint64_t pos = EntryOffset(victim, 4) + 2 * sizeof(float) * 4 +
                       4 * sizeof(uint32_t) + sizeof(uint64_t);
  ASSERT_TRUE((*file)->Write(pos, sizeof(bad_length), &bad_length).ok());
  auto opened = IqTree::Open(storage, "idx", disk);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
}

TEST(CorruptIndexTest, NonFiniteMbrRejected) {
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  BuildQuantizedIndex(&storage, &disk);
  auto file = storage.Open("idx.dir");
  ASSERT_TRUE(file.ok());
  const float nan = std::numeric_limits<float>::quiet_NaN();
  ASSERT_TRUE((*file)->Write(EntryOffset(0, 4), sizeof(nan), &nan).ok());
  auto opened = IqTree::Open(storage, "idx", disk);
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption()) << opened.status().ToString();
}

TEST(CheckedBitReaderTest, StopsAtBufferEnd) {
  const std::vector<uint8_t> buf(2, 0xFF);
  CheckedBitReader reader(std::span(buf.data(), buf.size()));
  uint32_t v = 0;
  ASSERT_TRUE(reader.Get(12, &v).ok());
  EXPECT_EQ(v, 0xFFFu);
  EXPECT_EQ(reader.bits_remaining(), 4u);
  EXPECT_TRUE(reader.Get(5, &v).IsOutOfRange());
  // A failed read leaves the cursor (and value) untouched.
  EXPECT_EQ(reader.bit_position(), 12u);
  ASSERT_TRUE(reader.Get(4, &v).ok());
  EXPECT_TRUE(reader.Get(1, &v).IsOutOfRange());
  EXPECT_TRUE(reader.Seek(17).IsOutOfRange());
  ASSERT_TRUE(reader.Seek(0).ok());
  ASSERT_TRUE(reader.Get(16, &v).ok());
  EXPECT_EQ(v, 0xFFFFu);
}

TEST(CheckedBitReaderTest, RejectsOversizedWidth) {
  const std::vector<uint8_t> buf(16, 0);
  CheckedBitReader reader(std::span(buf.data(), buf.size()));
  uint32_t v = 0;
  EXPECT_TRUE(reader.Get(33, &v).IsInvalidArgument());
}

TEST(ParseDirEntryTest, ShortBufferRejected) {
  const std::vector<uint8_t> bytes(DirEntryBytes(4) - 1, 0);
  auto parsed = ParseDirEntry(std::span(bytes.data(), bytes.size()), 4);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(DecoderRobustnessTest, DirectoryReaderOnGarbage) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    MemoryStorage storage;
    auto file = storage.Create("d");
    ASSERT_TRUE(file.ok());
    const auto bytes = RandomBytes(rng, rng.Index(2048));
    if (!bytes.empty()) {
      ASSERT_TRUE((*file)->Write(0, bytes.size(), bytes.data()).ok());
    }
    std::vector<DirEntry> entries;
    (void)ReadDirectory(**file, &entries);  // must not crash
  }
}

}  // namespace
}  // namespace iq
