// Random-bytes robustness: feeding arbitrary garbage to every decoder
// and every Open() path must produce Status errors (or, for headerless
// formats, garbage-but-bounded data) — never crashes, hangs or
// out-of-bounds reads. Poor man's fuzzing, deterministic via seeds.

#include <vector>

#include <gtest/gtest.h>

#include "btree/b_plus_tree.h"
#include "common/random.h"
#include "core/format.h"
#include "core/iq_tree.h"
#include "data/dataset_io.h"
#include "pyramid/pyramid_technique.h"
#include "rstar/r_star_tree.h"
#include "scan/seq_scan.h"
#include "vafile/va_file.h"
#include "xtree/x_tree.h"

namespace iq {
namespace {

std::vector<uint8_t> RandomBytes(Rng& rng, size_t size) {
  std::vector<uint8_t> bytes(size);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.Index(256));
  }
  return bytes;
}

TEST(DecoderRobustnessTest, QuantPageCodecOnGarbage) {
  Rng rng(1);
  const QuantPageCodec codec(8, 2048);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> page = RandomBytes(rng, 2048);
    auto header = codec.DecodeHeader(page.data());
    if (!header.ok()) continue;  // rejected, fine
    // If the header happens to parse, the decoders must still stay in
    // bounds and only ever fail with Status.
    std::vector<uint32_t> cells;
    std::vector<PointId> ids;
    std::vector<float> coords;
    if (header->bits >= kExactBits) {
      (void)codec.DecodeExact(page.data(), &ids, &coords);
    } else {
      (void)codec.DecodeCells(page.data(), &cells);
    }
  }
}

TEST(DecoderRobustnessTest, ExactPageCodecOnGarbage) {
  Rng rng(2);
  const ExactPageCodec codec(5);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t size = rng.Index(300);
    std::vector<uint8_t> bytes = RandomBytes(rng, size + 1);
    std::vector<PointId> ids;
    std::vector<float> coords;
    (void)codec.Decode(bytes.data(), size, &ids, &coords);
  }
}

TEST(DecoderRobustnessTest, AllOpensRejectGarbageFiles) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    MemoryStorage storage;
    DiskModel disk(DiskParameters{0.010, 0.002, 2048});
    // Write garbage under every file name each structure expects.
    for (const char* name :
         {"g.dir", "g.qpg", "g.dat", "g.xdir", "g.xpg", "g.rdir", "g.rpg",
          "g.vaa", "g.vav", "g.scn", "g.bpd", "g.bpl", "g.pyr"}) {
      auto file = storage.Create(name);
      ASSERT_TRUE(file.ok());
      const auto bytes = RandomBytes(rng, 64 + rng.Index(4096));
      ASSERT_TRUE((*file)->Write(0, bytes.size(), bytes.data()).ok());
    }
    EXPECT_FALSE(IqTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(XTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(RStarTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(VaFile::Open(storage, "g", disk).ok());
    EXPECT_FALSE(SeqScan::Open(storage, "g", disk).ok());
    EXPECT_FALSE(BPlusTree::Open(storage, "g", disk).ok());
    EXPECT_FALSE(PyramidTechnique::Open(storage, "g", disk).ok());
    EXPECT_FALSE(ReadDataset(storage, "g.dir").ok());
  }
}

TEST(DecoderRobustnessTest, DirectoryReaderOnGarbage) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    MemoryStorage storage;
    auto file = storage.Create("d");
    ASSERT_TRUE(file.ok());
    const auto bytes = RandomBytes(rng, rng.Index(2048));
    if (!bytes.empty()) {
      ASSERT_TRUE((*file)->Write(0, bytes.size(), bytes.data()).ok());
    }
    std::vector<DirEntry> entries;
    (void)ReadDirectory(**file, &entries);  // must not crash
  }
}

}  // namespace
}  // namespace iq
