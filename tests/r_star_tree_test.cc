#include "rstar/r_star_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

class RStarTreeTest : public ::testing::Test {
 protected:
  RStarTreeTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(RStarTreeTest, BuildAndSelfQueries) {
  const Dataset data = GenerateUniform(3000, 6, 1);
  auto tree = RStarTree::Build(data, storage_, "r", disk_, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->size(), 3000u);
  const auto stats = (*tree)->ComputeStats();
  EXPECT_GT(stats.num_data_pages, 1u);
  EXPECT_GE(stats.height, 2u);
  for (size_t i = 0; i < data.size(); i += 311) {
    auto nn = (*tree)->NearestNeighbor(data[i]);
    ASSERT_TRUE(nn.ok());
    EXPECT_EQ(nn->distance, 0.0);
  }
}

TEST_F(RStarTreeTest, KnnMatchesBruteForce) {
  Dataset data = GenerateCadLike(2500, 8, 2);
  const Dataset queries = data.TakeTail(12);
  auto tree = RStarTree::Build(data, storage_, "r", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<double> dists;
    for (size_t i = 0; i < data.size(); ++i) {
      dists.push_back(Distance(queries[qi], data[i], Metric::kL2));
    }
    std::sort(dists.begin(), dists.end());
    auto got = (*tree)->KNearestNeighbors(queries[qi], 5);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR((*got)[i].distance, dists[i], 1e-6);
    }
  }
}

TEST_F(RStarTreeTest, DynamicInsertsWithReinsertionStayCorrect) {
  Dataset initial = GenerateUniform(300, 5, 3);
  auto tree = RStarTree::Build(initial, storage_, "r", disk_, {});
  ASSERT_TRUE(tree.ok());
  Dataset reference = initial;
  const Dataset extra = GenerateUniform(2700, 5, 4);
  for (size_t i = 0; i < extra.size(); ++i) {
    ASSERT_TRUE(
        (*tree)->Insert(static_cast<PointId>(300 + i), extra[i]).ok());
    reference.Append(extra[i]);
  }
  EXPECT_EQ((*tree)->size(), 3000u);
  // Forced reinsertion actually happened.
  EXPECT_GT((*tree)->ComputeStats().reinsertions, 0u);
  const Dataset queries = GenerateUniform(10, 5, 5);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    double best = 1e300;
    for (size_t i = 0; i < reference.size(); ++i) {
      best = std::min(best,
                      Distance(queries[qi], reference[i], Metric::kL2));
    }
    auto nn = (*tree)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(nn.ok());
    EXPECT_NEAR(nn->distance, best, 1e-6);
  }
}

TEST_F(RStarTreeTest, InsertFromEmpty) {
  auto tree = RStarTree::Build(Dataset(4), storage_, "r", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset points = GenerateUniform(900, 4, 6);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE((*tree)->Insert(static_cast<PointId>(i), points[i]).ok());
  }
  EXPECT_EQ((*tree)->size(), 900u);
  auto nn = (*tree)->NearestNeighbor(points[500]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(RStarTreeTest, RangeAndWindowMatchBruteForce) {
  Dataset data = GenerateWeatherLike(1500, 9, 7);
  const Dataset queries = data.TakeTail(4);
  auto tree = RStarTree::Build(data, storage_, "r", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const double radius = 0.2;
    std::set<PointId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (Distance(queries[qi], data[i], Metric::kL2) <= radius) {
        expected.insert(static_cast<PointId>(i));
      }
    }
    auto got = (*tree)->RangeSearch(queries[qi], radius);
    ASSERT_TRUE(got.ok());
    std::set<PointId> got_ids;
    for (const Neighbor& r : *got) got_ids.insert(r.id);
    EXPECT_EQ(got_ids, expected);
  }
  const Mbr window = Mbr::FromBounds(std::vector<float>(9, 0.25f),
                                     std::vector<float>(9, 0.75f));
  std::set<PointId> expected;
  for (size_t i = 0; i < data.size(); ++i) {
    if (window.Contains(data[i])) expected.insert(static_cast<PointId>(i));
  }
  auto got = (*tree)->WindowQuery(window);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::set<PointId>(got->begin(), got->end()), expected);
}

TEST_F(RStarTreeTest, OpenRoundTrip) {
  const Dataset data = GenerateUniform(1200, 5, 8);
  {
    auto tree = RStarTree::Build(data, storage_, "r", disk_, {});
    ASSERT_TRUE(tree.ok());
    ASSERT_TRUE((*tree)->Insert(9999, data[0]).ok());
    ASSERT_TRUE((*tree)->Flush().ok());
  }
  auto reopened = RStarTree::Open(storage_, "r", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 1201u);
  auto nn = (*reopened)->NearestNeighbor(data[3]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(RStarTreeTest, CorruptDirectoryDetected) {
  const Dataset data = GenerateUniform(500, 4, 9);
  ASSERT_TRUE(RStarTree::Build(data, storage_, "r", disk_, {}).ok());
  auto f = storage_.Open("r.rdir");
  ASSERT_TRUE(f.ok());
  const uint8_t junk = 0x00;
  ASSERT_TRUE((*f)->Write(0, 1, &junk).ok());
  EXPECT_TRUE(RStarTree::Open(storage_, "r", disk_).status().IsCorruption());
}

TEST_F(RStarTreeTest, ReinsertionDisabledStillWorks) {
  RStarTree::Options options;
  options.reinsert_fraction = 0.0;
  auto tree = RStarTree::Build(Dataset(4), storage_, "r", disk_, options);
  ASSERT_TRUE(tree.ok());
  const Dataset points = GenerateUniform(1000, 4, 10);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE((*tree)->Insert(static_cast<PointId>(i), points[i]).ok());
  }
  EXPECT_EQ((*tree)->ComputeStats().reinsertions, 0u);
  auto nn = (*tree)->NearestNeighbor(points[1]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

}  // namespace
}  // namespace iq
