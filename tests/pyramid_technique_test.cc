#include "pyramid/pyramid_technique.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"

namespace iq {
namespace {

class PyramidTest : public ::testing::Test {
 protected:
  PyramidTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(PyramidTest, PyramidValueMapping) {
  // 2-d: pyramids 0 (x low), 1 (y low), 2 (x high), 3 (y high).
  const std::vector<float> left{0.1f, 0.5f};
  EXPECT_NEAR(PyramidTechnique::PyramidValue(left), 0.0 + 0.4, 1e-6);
  const std::vector<float> bottom{0.5f, 0.2f};
  EXPECT_NEAR(PyramidTechnique::PyramidValue(bottom), 1.0 + 0.3, 1e-6);
  const std::vector<float> right{0.9f, 0.5f};
  EXPECT_NEAR(PyramidTechnique::PyramidValue(right), 2.0 + 0.4, 1e-6);
  const std::vector<float> top{0.5f, 0.95f};
  EXPECT_NEAR(PyramidTechnique::PyramidValue(top), 3.0 + 0.45, 1e-6);
  // The center has height 0.
  const std::vector<float> center{0.5f, 0.5f};
  const double pv = PyramidTechnique::PyramidValue(center);
  EXPECT_NEAR(pv - std::floor(pv), 0.0, 1e-6);
}

TEST_F(PyramidTest, PyramidValueBounds) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t d = 1 + rng.Index(16);
    std::vector<float> p(d);
    for (size_t j = 0; j < d; ++j) {
      p[j] = static_cast<float>(rng.Uniform());
    }
    const double pv = PyramidTechnique::PyramidValue(p);
    EXPECT_GE(pv, 0.0);
    EXPECT_LT(pv, 2.0 * static_cast<double>(d));
    // Height part is at most 0.5.
    EXPECT_LE(pv - std::floor(pv), 0.5 + 1e-9);
  }
}

TEST_F(PyramidTest, WindowQueryMatchesBruteForce) {
  const Dataset data = GenerateUniform(4000, 6, 2);
  auto pyramid = PyramidTechnique::Build(data, storage_, "p", disk_, {});
  ASSERT_TRUE(pyramid.ok()) << pyramid.status().ToString();
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> lb(6), ub(6);
    for (size_t j = 0; j < 6; ++j) {
      const double a = rng.Uniform(), b = rng.Uniform();
      lb[j] = static_cast<float>(std::min(a, b));
      ub[j] = static_cast<float>(std::max(a, b));
    }
    const Mbr window = Mbr::FromBounds(lb, ub);
    std::set<PointId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (window.Contains(data[i])) expected.insert(static_cast<PointId>(i));
    }
    auto got = (*pyramid)->WindowQuery(window);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(std::set<PointId>(got->begin(), got->end()), expected)
        << "trial " << trial;
  }
}

TEST_F(PyramidTest, RangeSearchMatchesBruteForce) {
  Dataset data = GenerateWeatherLike(3000, 9, 4);
  const Dataset queries = data.TakeTail(8);
  auto pyramid = PyramidTechnique::Build(data, storage_, "p", disk_, {});
  ASSERT_TRUE(pyramid.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (double radius : {0.05, 0.2}) {
      std::set<PointId> expected;
      for (size_t i = 0; i < data.size(); ++i) {
        if (Distance(queries[qi], data[i], Metric::kL2) <= radius) {
          expected.insert(static_cast<PointId>(i));
        }
      }
      auto got = (*pyramid)->RangeSearch(queries[qi], radius);
      ASSERT_TRUE(got.ok());
      std::set<PointId> got_ids;
      for (const Neighbor& r : *got) got_ids.insert(r.id);
      EXPECT_EQ(got_ids, expected) << "query " << qi << " r=" << radius;
    }
  }
}

TEST_F(PyramidTest, KnnMatchesBruteForce) {
  Dataset data = GenerateCadLike(2500, 8, 5);
  const Dataset queries = data.TakeTail(10);
  auto pyramid = PyramidTechnique::Build(data, storage_, "p", disk_, {});
  ASSERT_TRUE(pyramid.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    std::vector<double> dists;
    for (size_t i = 0; i < data.size(); ++i) {
      dists.push_back(Distance(queries[qi], data[i], Metric::kL2));
    }
    std::sort(dists.begin(), dists.end());
    auto got = (*pyramid)->KNearestNeighbors(queries[qi], 4);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_NEAR((*got)[i].distance, dists[i], 1e-6)
          << "query " << qi << " rank " << i;
    }
  }
}

TEST_F(PyramidTest, InsertThenQuery) {
  auto pyramid =
      PyramidTechnique::Build(Dataset(4), storage_, "p", disk_, {});
  ASSERT_TRUE(pyramid.ok());
  const Dataset points = GenerateUniform(800, 4, 6);
  for (size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(
        (*pyramid)->Insert(static_cast<PointId>(i), points[i]).ok());
  }
  EXPECT_EQ((*pyramid)->size(), 800u);
  auto nn = (*pyramid)->NearestNeighbor(points[123]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 123u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(PyramidTest, RejectsPointsOutsideUnitCube) {
  auto pyramid =
      PyramidTechnique::Build(Dataset(3), storage_, "p", disk_, {});
  ASSERT_TRUE(pyramid.ok());
  const std::vector<float> outside{1.5f, 0.5f, 0.5f};
  EXPECT_TRUE((*pyramid)->Insert(0, outside).IsInvalidArgument());
}

TEST_F(PyramidTest, FlushOpenRoundTrip) {
  const Dataset data = GenerateUniform(1000, 5, 7);
  {
    auto pyramid = PyramidTechnique::Build(data, storage_, "p", disk_, {});
    ASSERT_TRUE(pyramid.ok());
    ASSERT_TRUE((*pyramid)->Flush().ok());
  }
  auto reopened = PyramidTechnique::Open(storage_, "p", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 1000u);
  auto nn = (*reopened)->NearestNeighbor(data[42]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 42u);
}

TEST_F(PyramidTest, CentralWindowTouchesFewPyramids) {
  // A small window near a corner of the space must not scan pyramids on
  // the opposite side: the scan cost stays well below a full pass.
  const Dataset data = GenerateUniform(20000, 8, 8);
  auto pyramid = PyramidTechnique::Build(data, storage_, "p", disk_, {});
  ASSERT_TRUE(pyramid.ok());
  const Mbr corner = Mbr::FromBounds(std::vector<float>(8, 0.02f),
                                     std::vector<float>(8, 0.10f));
  disk_.ResetStats();
  disk_.InvalidateHead();
  ASSERT_TRUE((*pyramid)->WindowQuery(corner).ok());
  const uint64_t corner_blocks = disk_.stats().blocks_read;
  disk_.ResetStats();
  const Mbr all = Mbr::FromBounds(std::vector<float>(8, 0.0f),
                                  std::vector<float>(8, 1.0f));
  ASSERT_TRUE((*pyramid)->WindowQuery(all).ok());
  const uint64_t all_blocks = disk_.stats().blocks_read;
  EXPECT_LT(corner_blocks, all_blocks / 2);
}

}  // namespace
}  // namespace iq
