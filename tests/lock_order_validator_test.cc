// Runtime side of the lock-rank contract (common/mutex.h). The static
// half lives in tools/iqlint; this validates the debug-build
// LockOrderValidator that backs it at runtime. Compiled in every
// configuration: when IQ_LOCK_RANK_CHECKS is off the validator hooks
// compile out and the tests assert that, too.

#include "common/mutex.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace iq {
namespace {

#if defined(IQ_LOCK_RANK_CHECKS)

/// Installs a failure handler that records instead of aborting, and
/// restores the default on destruction.
class CaptureFailures {
 public:
  CaptureFailures() {
    failures().store(0);
    LockOrderValidator::SetFailureHandler(+[](const char* msg) {
      failures().fetch_add(1);
      last_message() = msg;
    });
  }
  ~CaptureFailures() { LockOrderValidator::SetFailureHandler(nullptr); }

  static std::atomic<int>& failures() {
    static std::atomic<int> n{0};
    return n;
  }
  static std::string& last_message() {
    static std::string msg;
    return msg;
  }
};

TEST(LockOrderValidator, InOrderAcquisitionPasses) {
  CaptureFailures capture;
  Mutex low{IQ_LOCK_RANK(10)};
  Mutex high{IQ_LOCK_RANK(20)};
  {
    MutexLock a(&low);
    MutexLock b(&high);
    EXPECT_EQ(LockOrderValidator::HeldDepth(), 2);
  }
  EXPECT_EQ(LockOrderValidator::HeldDepth(), 0);
  EXPECT_EQ(CaptureFailures::failures().load(), 0);
}

TEST(LockOrderValidator, OutOfOrderAcquisitionFires) {
  CaptureFailures capture;
  Mutex low{IQ_LOCK_RANK(10)};
  Mutex high{IQ_LOCK_RANK(20)};
  {
    MutexLock a(&high);
    MutexLock b(&low);  // rank 10 while holding rank 20: must fire
  }
  EXPECT_EQ(CaptureFailures::failures().load(), 1);
  EXPECT_NE(CaptureFailures::last_message().find("rank 10"),
            std::string::npos);
  EXPECT_NE(CaptureFailures::last_message().find("rank 20"),
            std::string::npos);
}

TEST(LockOrderValidator, EqualRankAlsoFires) {
  CaptureFailures capture;
  Mutex a_mu{IQ_LOCK_RANK(30)};
  Mutex b_mu{IQ_LOCK_RANK(30)};
  {
    MutexLock a(&a_mu);
    MutexLock b(&b_mu);  // strictly increasing required
  }
  EXPECT_EQ(CaptureFailures::failures().load(), 1);
}

TEST(LockOrderValidator, UnrankedMutexesAreIgnored) {
  CaptureFailures capture;
  Mutex ranked{IQ_LOCK_RANK(20)};
  Mutex unranked;
  {
    MutexLock a(&ranked);
    MutexLock b(&unranked);  // rank 0: not tracked
    EXPECT_EQ(LockOrderValidator::HeldDepth(), 1);
  }
  EXPECT_EQ(CaptureFailures::failures().load(), 0);
}

TEST(LockOrderValidator, SequentialScopesDoNotNest) {
  CaptureFailures capture;
  Mutex low{IQ_LOCK_RANK(10)};
  Mutex high{IQ_LOCK_RANK(20)};
  { MutexLock a(&high); }
  { MutexLock b(&low); }  // previous lock released: no nesting
  EXPECT_EQ(CaptureFailures::failures().load(), 0);
}

TEST(LockOrderValidator, ReaderAndWriterLocksParticipate) {
  CaptureFailures capture;
  SharedMutex low{IQ_LOCK_RANK(10)};
  SharedMutex high{IQ_LOCK_RANK(20)};
  {
    ReaderMutexLock a(&high);
    WriterMutexLock b(&low);  // out of order through shared locks too
  }
  EXPECT_EQ(CaptureFailures::failures().load(), 1);
}

// The rank stack is thread_local: concurrent threads each validate
// their own acquisition order without synchronizing with each other.
// Under the TSan CI leg this additionally proves the validator itself
// introduces no data race.
TEST(LockOrderValidator, ThreadsValidateIndependently) {
  CaptureFailures capture;
  Mutex low{IQ_LOCK_RANK(10)};
  Mutex high{IQ_LOCK_RANK(20)};
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&low, &high, &sum] {
      for (int i = 0; i < 200; ++i) {
        MutexLock a(&low);
        MutexLock b(&high);
        sum.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sum.load(), 8 * 200);
  EXPECT_EQ(CaptureFailures::failures().load(), 0);
}

#else  // !defined(IQ_LOCK_RANK_CHECKS)

TEST(LockOrderValidator, CompiledOutInReleaseBuilds) {
  // Without the option the scoped locks must not reference the
  // validator at all; out-of-order acquisition goes unnoticed here (the
  // debug and TSan CI legs run with it enabled).
  Mutex low{IQ_LOCK_RANK(10)};
  Mutex high{IQ_LOCK_RANK(20)};
  MutexLock a(&high);
  MutexLock b(&low);
  EXPECT_EQ(low.rank(), 10);
  EXPECT_EQ(high.rank(), 20);
}

#endif  // IQ_LOCK_RANK_CHECKS

}  // namespace
}  // namespace iq
