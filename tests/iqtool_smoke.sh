#!/bin/sh
# End-to-end smoke test of the iqtool CLI: generate -> build -> query ->
# stats -> profile -> validate -> reopt against real files in a temp
# directory.
set -eu

IQTOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$IQTOOL" generate --out "$DIR/ds" --workload cad --n 3000 --dims 8 \
    --seed 7 | grep -q "wrote 3000 x 8"
"$IQTOOL" build --dir "$DIR" --dataset ds --index idx | grep -q "built 'idx'"
"$IQTOOL" query --dir "$DIR" --index idx \
    --point 0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5 --k 3 | grep -qc "id=" \
    >/dev/null
"$IQTOOL" query --dir "$DIR" --index idx \
    --point 0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5 --radius 0.4 \
    | grep -q "points within"
"$IQTOOL" stats --dir "$DIR" --index idx | grep -q "points:       3000"
"$IQTOOL" stats --dir "$DIR" --index idx --metrics \
    | grep -q "# TYPE iq_storage_reads_total counter"
"$IQTOOL" stats --dir "$DIR" --index idx --json | grep -q '"metrics"'
# profile: span tree + consistency check (exits non-zero on a
# trace/stats mismatch), single query and dataset batch, both modes.
"$IQTOOL" profile --dir "$DIR" --index idx \
    --point 0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5 --k 3 >/dev/null
"$IQTOOL" profile --dir "$DIR" --index idx --queries ds --limit 4 \
    --radius 0.4 >/dev/null
"$IQTOOL" profile --dir "$DIR" --index idx --queries ds --limit 4 --k 2 \
    --json | grep -q '"queries"'
"$IQTOOL" profile --dir "$DIR" --index idx --queries ds --limit 4 --k 2 \
    --threads 2 --json | grep -q '"queries"'
"$IQTOOL" validate --dir "$DIR" --index idx | grep -q "^OK"
"$IQTOOL" reopt --dir "$DIR" --index idx | grep -q "reoptimized"
"$IQTOOL" validate --dir "$DIR" --index idx | grep -q "^OK"

# Sharded layout: build a manifest, then both stats/health spellings.
"$IQTOOL" shard build --dir "$DIR" --dataset ds --manifest m --shards 3 \
    --plan rank | grep -q "built 3 shards over 3000 points"
"$IQTOOL" shard stats --dir "$DIR" --manifest m \
    | grep -q "points:       3000"
"$IQTOOL" shard stats --dir "$DIR" --manifest m --json \
    | grep -q '"per_shard"'
"$IQTOOL" stats --dir "$DIR" --manifest m --json | grep -q '"aggregate"'
"$IQTOOL" shard health --dir "$DIR" --manifest m \
    | grep -q "points / pages:     3000"
"$IQTOOL" health --dir "$DIR" --manifest m --json | grep -q '"per_shard"'

# Error paths exit non-zero.
if "$IQTOOL" query --dir "$DIR" --index missing --point 0.5 2>/dev/null; then
  echo "expected failure for missing index" >&2
  exit 1
fi
if "$IQTOOL" bogus-subcommand 2>/dev/null; then
  echo "expected usage failure" >&2
  exit 1
fi

echo "iqtool smoke OK"
