// Concurrency regression + TSan stress tests for the shared-state I/O
// layer: BlockCache (LRU list, map, hit/miss counters under one
// mutex), DiskModel accounting, and BlockFile read-through. Under
// IQ_SANITIZE=thread these are the race hunts the hardening matrix's
// `thread` leg runs; in a plain build they still verify the invariants
// the mutex must preserve (stats conservation, bounded size, payload
// integrity).

#include "io/block_cache.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/block_file.h"
#include "io/disk_model.h"
#include "io/storage.h"

namespace iq {
namespace {

constexpr uint32_t kBlockSize = 512;

/// A block whose every byte encodes its identity, so a torn or
/// misdirected copy is detectable.
std::vector<uint8_t> StampedBlock(uint32_t file_id, uint64_t block) {
  std::vector<uint8_t> data(kBlockSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(file_id * 131 + block * 31 + i);
  }
  return data;
}

bool IsStamped(const std::vector<uint8_t>& data, uint32_t file_id,
               uint64_t block) {
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] != static_cast<uint8_t>(file_id * 131 + block * 31 + i)) {
      return false;
    }
  }
  return true;
}

void RunThreads(size_t n, const std::function<void(size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t t = 0; t < n; ++t) threads.emplace_back(body, t);
  for (std::thread& t : threads) t.join();
}

// The satellite regression: two threads hammering the SAME block must
// never corrupt LRU ordering or stats. Every lookup is a hit after the
// initial insert, every copy must be intact, and hits + misses must
// equal the number of lookups exactly (a torn ++ would lose counts).
TEST(BlockCacheConcurrencyTest, TwoThreadsSameBlockKeepStatsAndDataIntact) {
  BlockCache cache(kBlockSize, 8);
  const auto payload = StampedBlock(1, 7);
  cache.Insert(1, 7, payload.data());
  cache.ResetStats();

  constexpr int kLookupsPerThread = 20000;
  std::atomic<int> bad_copies{0};
  RunThreads(2, [&](size_t) {
    std::vector<uint8_t> out(kBlockSize);
    for (int i = 0; i < kLookupsPerThread; ++i) {
      if (!cache.Lookup(1, 7, out.data()) || !IsStamped(out, 1, 7)) {
        bad_copies.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  EXPECT_EQ(bad_copies.load(), 0);
  EXPECT_EQ(cache.hits(), 2u * kLookupsPerThread);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.size(), 1u);
  // The hammered block is most-recently-used: inserting up to capacity
  // must never evict it.
  for (uint64_t b = 100; b < 107; ++b) {
    const auto filler = StampedBlock(1, b);
    cache.Insert(1, b, filler.data());
  }
  std::vector<uint8_t> out(kBlockSize);
  EXPECT_TRUE(cache.Lookup(1, 7, out.data()));
}

// Eviction churn: many threads insert and look up an overlapping key
// range far larger than capacity. Size must stay bounded, every
// successful lookup must return the right payload, and the final
// hit/miss totals must account for every operation.
TEST(BlockCacheConcurrencyTest, EvictionChurnUnderManyThreads) {
  constexpr size_t kCapacity = 16;
  constexpr size_t kThreads = 4;
  constexpr int kOpsPerThread = 8000;
  constexpr uint64_t kKeySpace = 64;  // 4x capacity: constant eviction
  BlockCache cache(kBlockSize, kCapacity);

  std::atomic<uint64_t> lookups{0};
  std::atomic<int> bad{0};
  RunThreads(kThreads, [&](size_t t) {
    std::vector<uint8_t> out(kBlockSize);
    uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
    for (int i = 0; i < kOpsPerThread; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t block = (state >> 33) % kKeySpace;
      if ((state & 1) != 0) {
        const auto payload = StampedBlock(3, block);
        cache.Insert(3, block, payload.data());
      } else {
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (cache.Lookup(3, block, out.data()) && !IsStamped(out, 3, block)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (i % 1000 == 0) {
        if (cache.size() > kCapacity) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.size(), kCapacity);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
}

// EraseFile/Clear racing lookups and inserts: exercises iterator
// invalidation paths under contention (TSan would flag any unlocked
// list/map access; the assertions catch logical corruption).
TEST(BlockCacheConcurrencyTest, EraseFileRacesLookupsAndInserts) {
  BlockCache cache(kBlockSize, 32);
  constexpr int kRounds = 2000;

  std::vector<std::thread> threads;
  for (uint32_t file_id = 1; file_id <= 2; ++file_id) {
    threads.emplace_back([&cache, file_id]() {
      std::vector<uint8_t> out(kBlockSize);
      for (int i = 0; i < kRounds; ++i) {
        const uint64_t block = static_cast<uint64_t>(i) % 24;
        const auto payload = StampedBlock(file_id, block);
        cache.Insert(file_id, block, payload.data());
        cache.Lookup(file_id, block, out.data());
      }
    });
  }
  threads.emplace_back([&cache]() {
    for (int i = 0; i < kRounds / 4; ++i) {
      cache.EraseFile(1);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) t.join();

  // File 2 entries must be untouched by the file-1 erasure storms.
  std::vector<uint8_t> out(kBlockSize);
  uint64_t found = 0;
  for (uint64_t b = 0; b < 24; ++b) {
    if (cache.Lookup(2, b, out.data())) {
      EXPECT_TRUE(IsStamped(out, 2, b));
      ++found;
    }
  }
  EXPECT_GT(found, 0u);
}

// Whole-stack read-through: multiple threads ReadRange over one
// BlockFile sharing one cache and one DiskModel. Checks payload
// integrity end-to-end and that the DiskModel's accounting is
// conserved (blocks_read never exceeds what an uncached run would
// charge, and io_time_s stays finite and positive).
TEST(BlockCacheConcurrencyTest, ConcurrentReadThroughBlockFile) {
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, kBlockSize});
  BlockFile bf;
  ASSERT_TRUE(bf.Open(storage, "bf", disk, /*create=*/true).ok());
  constexpr uint64_t kBlocks = 64;
  for (uint64_t b = 0; b < kBlocks; ++b) {
    const auto payload = StampedBlock(0, b);
    ASSERT_TRUE(bf.AppendBlock(payload.data()).ok());
  }
  BlockCache cache(kBlockSize, 32);
  bf.set_cache(&cache);
  disk.ResetStats();

  constexpr size_t kThreads = 4;
  constexpr int kReadsPerThread = 500;
  std::atomic<int> bad{0};
  RunThreads(kThreads, [&](size_t t) {
    std::vector<uint8_t> out(4 * kBlockSize);
    uint64_t state = 0x243f6a8885a308d3ULL * (t + 1);
    for (int i = 0; i < kReadsPerThread; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t first = (state >> 33) % (kBlocks - 4);
      const uint64_t count = 1 + (state >> 20) % 4;
      if (!bf.ReadRange(first, count, out.data()).ok()) {
        bad.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      for (uint64_t b = 0; b < count; ++b) {
        std::vector<uint8_t> one(out.begin() + b * kBlockSize,
                                 out.begin() + (b + 1) * kBlockSize);
        if (!IsStamped(one, 0, first + b)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  EXPECT_EQ(bad.load(), 0);
  const IoStats stats = disk.stats();
  EXPECT_GT(stats.io_time_s, 0.0);
  // Every charged read is at most the 4-block span a thread asked for,
  // and hits are free: total charged blocks cannot exceed all requests.
  EXPECT_LE(stats.blocks_read,
            static_cast<uint64_t>(kThreads) * kReadsPerThread * 4);
  EXPECT_EQ(stats.blocks_written, 0u);
}

}  // namespace
}  // namespace iq
