// Concurrency stress for background maintenance: the tier-2 contract
// says Maint* page swaps may run concurrently with const queries, so
// this test points a running MaintenanceScheduler, several query
// client threads (through ParallelQueryRunner, which adds its own
// fan-out), and a stats poller at one tree and lets TSan (the `thread`
// CI leg) hunt the interleavings. Every answer produced while pages
// are being swapped underneath must still be bit-identical to the
// single-threaded ground truth — the point set never changes, only
// the page layout does.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/parallel_query_runner.h"
#include "data/generators.h"
#include "maint/maintenance_scheduler.h"

namespace iq {
namespace {

TEST(MaintStressTest, QueriesStayExactWhileMaintenanceRuns) {
  const size_t kDims = 6;
  const size_t kK = 3;
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  const Dataset data = GenerateCadLike(5000, kDims, 41);
  Dataset queries(kDims);
  for (size_t i = 0; i < 24; ++i) queries.Append(data[i]);

  // Build with a fixed coarse level so maintenance has guaranteed
  // re-quantization work from the first round on.
  IqTree::Options build;
  build.fixed_quant_bits = 4;
  auto tree = IqTree::Build(data, storage, "t", disk, build);
  ASSERT_TRUE(tree.ok());

  // Single-threaded ground truth before any maintenance: per-query
  // (distance, id) lists. The point set is immutable here, so every
  // concurrent answer must reproduce these exact floats.
  std::vector<std::vector<Neighbor>> expected;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto result = (*tree)->KNearestNeighbors(queries[qi], kK);
    ASSERT_TRUE(result.ok());
    expected.push_back(*result);
  }

  obs::PageStatsCollector collector;
  maint::MaintenanceScheduler::Options options;
  options.policy.min_queries = 8;
  options.interval_s = 0.001;  // keep swapping while clients run
  maint::MaintenanceScheduler scheduler(tree->get(), &collector, options);
  scheduler.Start();
  ASSERT_TRUE(scheduler.running());

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};

  // Client threads: batches with telemetry attached (feeding the
  // scheduler real page stats) racing the page swaps.
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      IqSearchOptions search;
      search.page_stats = &collector;
      ParallelQueryRunner runner(**tree, 2);
      while (!stop.load()) {
        auto batch = runner.KnnBatch(queries, kK, search);
        if (!batch.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const std::vector<Neighbor>& got = (*batch)[qi];
          const std::vector<Neighbor>& want = expected[qi];
          if (got.size() != want.size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < got.size(); ++i) {
            if (got[i].distance != want[i].distance) mismatches.fetch_add(1);
          }
        }
      }
    });
  }

  // Stats poller: reads the scheduler counters, the collector, and the
  // tree's published directory version while everything else runs.
  // (PredictCost is deliberately NOT polled here — it walks the
  // directory and is reserved for the maintenance thread itself.)
  std::thread poller([&] {
    uint64_t last_version = 0;
    while (!stop.load()) {
      const maint::MaintenanceStats stats = scheduler.stats();
      (void)stats.actions_applied;
      (void)collector.queries();
      const uint64_t version = (*tree)->dir_version();
      EXPECT_GE(version, last_version);
      last_version = version;
      std::this_thread::yield();
    }
  });

  // Let clients and maintenance overlap for a fixed number of swap
  // generations rather than wall time, so the test is meaningful on
  // slow TSan builds too.
  const uint64_t start_version = (*tree)->dir_version();
  for (int spin = 0;
       spin < 2000 && (*tree)->dir_version() < start_version + 4; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
  poller.join();
  scheduler.Stop();
  EXPECT_FALSE(scheduler.running());

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
  // Maintenance actually did something while the clients ran.
  const maint::MaintenanceStats stats = scheduler.stats();
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.actions_applied, 0u);
  EXPECT_GT((*tree)->dir_version(), start_version);

  // Quiesced: the tree still holds every point and answers exactly.
  uint64_t total = 0;
  for (const DirEntry& entry : (*tree)->directory()) total += entry.count;
  EXPECT_EQ(total, data.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto result = (*tree)->KNearestNeighbors(queries[qi], kK);
    ASSERT_TRUE(result.ok());
    for (size_t i = 0; i < result->size(); ++i) {
      EXPECT_EQ((*result)[i].distance, expected[qi][i].distance);
    }
  }
  ASSERT_TRUE((*tree)->Flush().ok());
}

}  // namespace
}  // namespace iq
