#include "geom/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/volumes.h"

namespace iq {
namespace {

TEST(DistanceTest, L2) {
  const std::vector<float> a{0, 0, 0};
  const std::vector<float> b{1, 2, 2};
  EXPECT_NEAR(Distance(a, b, Metric::kL2), 3.0, 1e-9);
}

TEST(DistanceTest, LMax) {
  const std::vector<float> a{0, 0, 0};
  const std::vector<float> b{1, -2, 0.5};
  EXPECT_NEAR(Distance(a, b, Metric::kLMax), 2.0, 1e-9);
}

TEST(MinMaxDistTest, InsideBoxMinDistIsZero) {
  Mbr box = Mbr::FromBounds({0, 0}, {1, 1});
  const std::vector<float> q{0.5f, 0.5f};
  EXPECT_EQ(MinDist(q, box, Metric::kL2), 0.0);
  EXPECT_EQ(MinDist(q, box, Metric::kLMax), 0.0);
  EXPECT_NEAR(MaxDist(q, box, Metric::kLMax), 0.5, 1e-9);
}

TEST(MinMaxDistTest, OutsideBox) {
  Mbr box = Mbr::FromBounds({0, 0}, {1, 1});
  const std::vector<float> q{2.0f, 0.5f};
  EXPECT_NEAR(MinDist(q, box, Metric::kL2), 1.0, 1e-9);
  EXPECT_NEAR(MinDist(q, box, Metric::kLMax), 1.0, 1e-9);
  EXPECT_NEAR(MaxDist(q, box, Metric::kL2), std::sqrt(4.0 + 0.25), 1e-6);
  EXPECT_NEAR(MaxDist(q, box, Metric::kLMax), 2.0, 1e-9);
}

/// Property: for random boxes and points, MINDIST lower-bounds and
/// MAXDIST upper-bounds the distance to every point sampled inside the
/// box, in both metrics.
class MinMaxDistProperty : public ::testing::TestWithParam<Metric> {};

TEST_P(MinMaxDistProperty, BoundsHold) {
  const Metric metric = GetParam();
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t d = 1 + rng.Index(8);
    std::vector<float> lb(d), ub(d), q(d);
    for (size_t i = 0; i < d; ++i) {
      const double a = rng.Uniform(), b = rng.Uniform();
      lb[i] = static_cast<float>(std::min(a, b));
      ub[i] = static_cast<float>(std::max(a, b));
      q[i] = static_cast<float>(rng.Uniform(-0.5, 1.5));
    }
    const Mbr box = Mbr::FromBounds(lb, ub);
    const double mind = MinDist(q, box, metric);
    const double maxd = MaxDist(q, box, metric);
    EXPECT_LE(mind, maxd + 1e-9);
    for (int s = 0; s < 20; ++s) {
      std::vector<float> p(d);
      for (size_t i = 0; i < d; ++i) {
        p[i] = static_cast<float>(rng.Uniform(box.lb(i), box.ub(i)));
      }
      const double dist = Distance(q, p, metric);
      EXPECT_GE(dist, mind - 1e-6);
      EXPECT_LE(dist, maxd + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, MinMaxDistProperty,
                         ::testing::Values(Metric::kL2, Metric::kLMax));

TEST(IntersectionVolumeTest, LMaxExact) {
  // Ball of radius 0.25 around (0.5, 0.5) clipped to the unit box.
  Mbr box = Mbr::FromBounds({0, 0}, {1, 1});
  const std::vector<float> q{0.5f, 0.5f};
  EXPECT_NEAR(IntersectionVolume(q, 0.25, box, Metric::kLMax), 0.25, 1e-9);
  // Ball centered at a corner: a quarter of it is inside.
  const std::vector<float> corner{0.0f, 0.0f};
  EXPECT_NEAR(IntersectionVolume(corner, 0.25, box, Metric::kLMax),
              0.0625, 1e-9);
  // Disjoint.
  const std::vector<float> far{3.0f, 3.0f};
  EXPECT_EQ(IntersectionVolume(far, 0.25, box, Metric::kLMax), 0.0);
}

TEST(IntersectionVolumeTest, L2IsScaledBelowLMax) {
  Mbr box = Mbr::FromBounds({0, 0, 0, 0}, {1, 1, 1, 1});
  const std::vector<float> q(4, 0.5f);
  const double lmax = IntersectionVolume(q, 0.2, box, Metric::kLMax);
  const double l2 = IntersectionVolume(q, 0.2, box, Metric::kL2);
  EXPECT_LT(l2, lmax);
  EXPECT_GT(l2, 0.0);
  // The scaling is the d-ball to d-cube ratio.
  EXPECT_NEAR(l2 / lmax, SphereVolume(4, 0.2) / CubeVolume(4, 0.2), 1e-9);
}

}  // namespace
}  // namespace iq
