#include "quant/grid_quantizer.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/metrics.h"

namespace iq {
namespace {

TEST(GridQuantizerTest, OneBitSplitsInHalf) {
  const Mbr mbr = Mbr::FromBounds({0, 0}, {1, 2});
  GridQuantizer quantizer(mbr, 1);
  EXPECT_EQ(quantizer.CellIndex(0, 0.25f), 0u);
  EXPECT_EQ(quantizer.CellIndex(0, 0.75f), 1u);
  EXPECT_EQ(quantizer.CellIndex(1, 0.5f), 0u);
  EXPECT_EQ(quantizer.CellIndex(1, 1.5f), 1u);
}

TEST(GridQuantizerTest, BorderValuesClamp) {
  const Mbr mbr = Mbr::FromBounds({0}, {1});
  GridQuantizer quantizer(mbr, 2);
  EXPECT_EQ(quantizer.CellIndex(0, 0.0f), 0u);
  EXPECT_EQ(quantizer.CellIndex(0, 1.0f), 3u);  // ub maps to the last cell
  EXPECT_EQ(quantizer.CellIndex(0, -5.0f), 0u);
  EXPECT_EQ(quantizer.CellIndex(0, 5.0f), 3u);
}

TEST(GridQuantizerTest, DegenerateDimension) {
  const Mbr mbr = Mbr::FromBounds({0.5, 0}, {0.5, 1});
  GridQuantizer quantizer(mbr, 4);
  EXPECT_EQ(quantizer.CellIndex(0, 0.5f), 0u);
  const std::vector<uint32_t> cells{0, 7};
  const Mbr box = quantizer.CellBox(cells);
  EXPECT_EQ(box.lb(0), 0.5f);
  EXPECT_EQ(box.ub(0), 0.5f);
}

TEST(GridQuantizerTest, CellWidthHalvesWhenBitsDouble) {
  const Mbr mbr = Mbr::FromBounds({0, 0}, {1, 1});
  for (unsigned g : {1u, 2u, 4u, 8u}) {
    GridQuantizer coarse(mbr, g);
    GridQuantizer fine(mbr, 2 * g);
    for (size_t i = 0; i < 2; ++i) {
      // Doubling the bits squares the cell count: width shrinks by 2^g.
      const float factor = static_cast<float>(1u << g);
      EXPECT_NEAR(coarse.CellWidth(i) / fine.CellWidth(i), factor, 1e-3);
    }
  }
}

/// The load-bearing invariant for search correctness: the decoded cell
/// box always contains the encoded point, so MINDIST(q, cell) never
/// exceeds the true distance.
class QuantizerRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(QuantizerRoundTrip, CellBoxContainsPoint) {
  const unsigned bits = GetParam();
  Rng rng(bits * 1000 + 17);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t d = 1 + rng.Index(16);
    std::vector<float> lb(d), ub(d);
    for (size_t i = 0; i < d; ++i) {
      const double a = rng.Uniform(-10, 10), b = rng.Uniform(-10, 10);
      lb[i] = static_cast<float>(std::min(a, b));
      ub[i] = static_cast<float>(std::max(a, b));
    }
    const Mbr mbr = Mbr::FromBounds(lb, ub);
    GridQuantizer quantizer(mbr, bits);
    std::vector<uint32_t> cells;
    for (int s = 0; s < 50; ++s) {
      std::vector<float> p(d);
      for (size_t i = 0; i < d; ++i) {
        p[i] = static_cast<float>(rng.Uniform(mbr.lb(i), mbr.ub(i)));
      }
      quantizer.Encode(p, cells);
      const Mbr box = quantizer.CellBox(cells);
      EXPECT_TRUE(box.Contains(p))
          << "bits=" << bits << " d=" << d << " trial=" << trial;
      // And therefore MINDIST from any query lower-bounds the distance.
      std::vector<float> q(d);
      for (size_t i = 0; i < d; ++i) {
        q[i] = static_cast<float>(rng.Uniform(-12, 12));
      }
      EXPECT_LE(MinDist(q, box, Metric::kL2),
                Distance(q, p, Metric::kL2) + 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLadderLevels, QuantizerRoundTrip,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(GridQuantizerTest, FarOutsideCoordinatesClampWithoutOverflow) {
  // Regression: a coordinate far outside the MBR makes rel = (coord -
  // lb) / w exceed 2^32, and the old direct uint32_t cast of that float
  // was undefined behavior (UBSan trapped here). The clamp must land on
  // the nearest edge cell instead.
  const Mbr mbr = Mbr::FromBounds({0, -1}, {1e-3f, 1});
  for (unsigned bits : {1u, 8u, 16u}) {
    GridQuantizer quantizer(mbr, bits);
    const uint32_t last = (uint32_t{1} << bits) - 1;
    EXPECT_EQ(quantizer.CellIndex(0, 1e30f), last) << "bits=" << bits;
    EXPECT_EQ(quantizer.CellIndex(0, -1e30f), 0u) << "bits=" << bits;
    EXPECT_EQ(quantizer.CellIndex(0, std::numeric_limits<float>::max()),
              last)
        << "bits=" << bits;
    EXPECT_EQ(quantizer.CellIndex(1, 1e9f), last) << "bits=" << bits;
    // In-range encoding is unaffected by the clamp.
    EXPECT_EQ(quantizer.CellIndex(1, -1.0f), 0u);
  }
}

TEST(GridQuantizerTest, CellBoundsTile) {
  const Mbr mbr = Mbr::FromBounds({0}, {1});
  GridQuantizer quantizer(mbr, 3);
  for (uint32_t c = 0; c + 1 < 8; ++c) {
    EXPECT_FLOAT_EQ(quantizer.CellUpper(0, c), quantizer.CellLower(0, c + 1));
  }
  EXPECT_FLOAT_EQ(quantizer.CellLower(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(quantizer.CellUpper(0, 7), 1.0f);
}

}  // namespace
}  // namespace iq
