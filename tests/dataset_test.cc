#include "data/dataset.h"

#include <gtest/gtest.h>

namespace iq {
namespace {

TEST(DatasetTest, AppendAndAccess) {
  Dataset data(3);
  EXPECT_TRUE(data.empty());
  data.Append(std::vector<float>{1, 2, 3});
  data.Append(std::vector<float>{4, 5, 6});
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data[1][0], 4.0f);
  EXPECT_EQ(data[0][2], 3.0f);
  EXPECT_EQ(data.row(1)[2], 6.0f);
}

TEST(DatasetTest, ConstructFromValues) {
  Dataset data(2, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(data[2][1], 5.0f);
}

TEST(DatasetTest, Bounds) {
  Dataset data(2, {0, 5, 3, -1, 1, 2});
  const Mbr bounds = data.Bounds();
  EXPECT_EQ(bounds.lb(0), 0.0f);
  EXPECT_EQ(bounds.ub(0), 3.0f);
  EXPECT_EQ(bounds.lb(1), -1.0f);
  EXPECT_EQ(bounds.ub(1), 5.0f);
}

TEST(DatasetTest, TakeTailSplitsQueries) {
  Dataset data(1, {0, 1, 2, 3, 4});
  Dataset tail = data.TakeTail(2);
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0][0], 3.0f);
  EXPECT_EQ(tail[1][0], 4.0f);
  EXPECT_EQ(data[2][0], 2.0f);
}

TEST(DatasetTest, NormalizeToUnitCube) {
  Dataset data(2, {-10, 0, 10, 100, 0, 50});
  const Mbr original = data.NormalizeToUnitCube();
  EXPECT_EQ(original.lb(0), -10.0f);
  EXPECT_EQ(original.ub(1), 100.0f);
  const Mbr normalized = data.Bounds();
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(normalized.lb(i), 0.0f);
    EXPECT_EQ(normalized.ub(i), 1.0f);
  }
  EXPECT_FLOAT_EQ(data[2][0], 0.5f);   // 0 in [-10, 10]
  EXPECT_FLOAT_EQ(data[2][1], 0.5f);   // 50 in [0, 100]
  // A query mapped with the returned bounds lands at the same relative
  // position.
  const Point q = MapIntoUnitCube(std::vector<float>{5.0f, 25.0f}, original);
  EXPECT_FLOAT_EQ(q[0], 0.75f);
  EXPECT_FLOAT_EQ(q[1], 0.25f);
}

TEST(DatasetTest, NormalizeDegenerateDimension) {
  Dataset data(2, {3, 1, 3, 2, 3, 5});
  data.NormalizeToUnitCube();
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(data[r][0], 0.5f);
  EXPECT_EQ(data[0][1], 0.0f);
  EXPECT_EQ(data[2][1], 1.0f);
}

TEST(DatasetTest, EmptyBounds) {
  Dataset data(4);
  EXPECT_TRUE(data.Bounds().IsEmpty());
}

}  // namespace
}  // namespace iq
