#include "shard/shard_manifest.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "io/storage.h"
#include "shard/shard_planner.h"

namespace iq {
namespace {

TEST(ShardPlannerTest, RoundRobinCycles) {
  ShardPlanner planner(ShardPlan::kRoundRobin, 3);
  const float coords[2] = {0.5f, 0.5f};
  const PointView p(coords, 2);
  for (uint64_t row = 0; row < 12; ++row) {
    EXPECT_EQ(planner.ShardOf(row, p), row % 3);
  }
}

TEST(ShardPlannerTest, RankPartitionBinsByPlanDimension) {
  ShardPlanner planner(ShardPlan::kRankPartition, 4, 1);
  auto shard_of = [&](float x) {
    const float coords[2] = {0.99f, x};
    return planner.ShardOf(0, PointView(coords, 2));
  };
  EXPECT_EQ(shard_of(0.0f), 0u);
  EXPECT_EQ(shard_of(0.24f), 0u);
  EXPECT_EQ(shard_of(0.25f), 1u);
  EXPECT_EQ(shard_of(0.6f), 2u);
  EXPECT_EQ(shard_of(0.99f), 3u);
}

TEST(ShardPlannerTest, RankPartitionClampsOutOfRangeInputs) {
  ShardPlanner planner(ShardPlan::kRankPartition, 4, 0);
  auto shard_of = [&](float x) {
    const float coords[1] = {x};
    return planner.ShardOf(0, PointView(coords, 1));
  };
  // The canonical data space is [0, 1], but stray inputs must clamp to
  // a valid shard instead of invoking float->int cast UB.
  EXPECT_EQ(shard_of(1.0f), 3u);
  EXPECT_EQ(shard_of(7.5f), 3u);
  EXPECT_EQ(shard_of(-2.0f), 0u);
  EXPECT_EQ(shard_of(std::numeric_limits<float>::quiet_NaN()), 0u);
}

ShardManifest MakeManifest() {
  ShardManifest manifest(2, Metric::kL2, ShardPlan::kRankPartition, 1);
  manifest.AddShard(ShardInfo{
      "base_s0", 10,
      Mbr::FromBounds({0.0f, 0.0f}, {0.5f, 0.4f})});
  manifest.AddShard(ShardInfo{"base_s1", 0, Mbr::Empty(2)});
  manifest.AddShard(ShardInfo{
      "base_s2", 7,
      Mbr::FromBounds({0.5f, 0.6f}, {1.0f, 1.0f})});
  return manifest;
}

TEST(ShardManifestTest, RoundTripsThroughStorage) {
  MemoryStorage storage;
  const ShardManifest manifest = MakeManifest();
  ASSERT_TRUE(manifest.Write(storage, "manifest").ok());

  Result<ShardManifest> read = ShardManifest::Read(storage, "manifest");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->dims(), 2u);
  EXPECT_EQ(read->metric(), Metric::kL2);
  EXPECT_EQ(read->plan(), ShardPlan::kRankPartition);
  EXPECT_EQ(read->plan_dim(), 1u);
  EXPECT_EQ(read->total_points(), 17u);
  ASSERT_EQ(read->num_shards(), 3u);
  EXPECT_EQ(read->shards()[0].name, "base_s0");
  EXPECT_EQ(read->shards()[0].points, 10u);
  EXPECT_EQ(read->shards()[0].bounds,
            Mbr::FromBounds({0.0f, 0.0f}, {0.5f, 0.4f}));
  // The empty shard's inverted bounds round-trip back to Empty.
  EXPECT_EQ(read->shards()[1].points, 0u);
  EXPECT_TRUE(read->shards()[1].bounds.IsEmpty());
  EXPECT_EQ(read->shards()[2].bounds,
            Mbr::FromBounds({0.5f, 0.6f}, {1.0f, 1.0f}));
  EXPECT_TRUE(read->Validate().ok());
}

TEST(ShardManifestTest, ShardIndexNameIsStable) {
  EXPECT_EQ(ShardManifest::ShardIndexName("idx", 0), "idx_s0");
  EXPECT_EQ(ShardManifest::ShardIndexName("idx", 12), "idx_s12");
}

TEST(ShardManifestTest, ValidateRejectsStructuralProblems) {
  // Zero dims.
  EXPECT_TRUE(ShardManifest().Validate().IsInvalidArgument());
  // No shards.
  ShardManifest empty(2, Metric::kL2, ShardPlan::kRoundRobin, 0);
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());
  // plan_dim out of range for a rank partition.
  ShardManifest bad_dim(2, Metric::kL2, ShardPlan::kRankPartition, 5);
  bad_dim.AddShard(ShardInfo{"s0", 1, Mbr::UnitCube(2)});
  EXPECT_TRUE(bad_dim.Validate().IsInvalidArgument());
  // Empty shard name.
  ShardManifest bad_name(2, Metric::kL2, ShardPlan::kRoundRobin, 0);
  bad_name.AddShard(ShardInfo{"", 1, Mbr::UnitCube(2)});
  EXPECT_TRUE(bad_name.Validate().IsInvalidArgument());
  // Bounds dimensionality mismatch.
  ShardManifest bad_bounds(2, Metric::kL2, ShardPlan::kRoundRobin, 0);
  bad_bounds.AddShard(ShardInfo{"s0", 1, Mbr::UnitCube(3)});
  EXPECT_TRUE(bad_bounds.Validate().IsInvalidArgument());
}

TEST(ShardManifestTest, ReadRejectsBadMagicAndVersion) {
  MemoryStorage storage;
  ASSERT_TRUE(MakeManifest().Write(storage, "manifest").ok());
  auto file = storage.Open("manifest");
  ASSERT_TRUE(file.ok());

  const uint32_t bad_magic = 0xDEADBEEF;
  ASSERT_TRUE((*file)->Write(0, sizeof(bad_magic), &bad_magic).ok());
  EXPECT_TRUE(ShardManifest::Read(storage, "manifest").status().IsCorruption());

  ASSERT_TRUE(MakeManifest().Write(storage, "manifest").ok());
  // Rewriting replaced the file: reopen before tampering again.
  file = storage.Open("manifest");
  ASSERT_TRUE(file.ok());
  const uint32_t bad_version = 99;
  ASSERT_TRUE((*file)->Write(4, sizeof(bad_version), &bad_version).ok());
  EXPECT_TRUE(ShardManifest::Read(storage, "manifest").status().IsCorruption());
}

TEST(ShardManifestTest, ReadRejectsTamperedTotals) {
  MemoryStorage storage;
  ASSERT_TRUE(MakeManifest().Write(storage, "manifest").ok());
  auto file = storage.Open("manifest");
  ASSERT_TRUE(file.ok());
  // total_points lives at byte 32 of the fixed header.
  const uint64_t wrong_total = 9999;
  ASSERT_TRUE((*file)->Write(32, sizeof(wrong_total), &wrong_total).ok());
  EXPECT_TRUE(ShardManifest::Read(storage, "manifest").status().IsCorruption());
}

TEST(ShardManifestTest, ReadRejectsTruncation) {
  MemoryStorage storage;
  ASSERT_TRUE(MakeManifest().Write(storage, "manifest").ok());
  auto file = storage.Open("manifest");
  ASSERT_TRUE(file.ok());
  const uint64_t full = (*file)->Size();
  // Every proper prefix must fail as Corruption, never crash.
  for (uint64_t size : {full - 1, full / 2, uint64_t{40}, uint64_t{8},
                        uint64_t{0}}) {
    MemoryStorage truncated_storage;
    std::vector<uint8_t> bytes(full);
    ASSERT_TRUE((*file)->Read(0, full, bytes.data()).ok());
    auto copy = truncated_storage.Create("manifest");
    ASSERT_TRUE(copy.ok());
    ASSERT_TRUE((*copy)->Write(0, size, bytes.data()).ok());
    EXPECT_TRUE(ShardManifest::Read(truncated_storage, "manifest")
                    .status()
                    .IsCorruption())
        << "prefix size " << size;
  }
}

TEST(ShardManifestTest, ReadRejectsTrailingGarbage) {
  MemoryStorage storage;
  ASSERT_TRUE(MakeManifest().Write(storage, "manifest").ok());
  auto file = storage.Open("manifest");
  ASSERT_TRUE(file.ok());
  const uint32_t garbage = 7;
  ASSERT_TRUE(
      (*file)->Write((*file)->Size(), sizeof(garbage), &garbage).ok());
  EXPECT_TRUE(ShardManifest::Read(storage, "manifest").status().IsCorruption());
}

}  // namespace
}  // namespace iq
