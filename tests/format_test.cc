#include "core/format.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "io/storage.h"
#include "quant/grid_quantizer.h"

namespace iq {
namespace {

TEST(QuantLadderTest, NextLevelDoubles) {
  EXPECT_EQ(NextQuantLevel(1), 2u);
  EXPECT_EQ(NextQuantLevel(2), 4u);
  EXPECT_EQ(NextQuantLevel(16), 32u);
  EXPECT_EQ(NextQuantLevel(32), 32u);
}

TEST(QuantLadderTest, IsQuantLevel) {
  for (unsigned g : kQuantLevels) EXPECT_TRUE(IsQuantLevel(g));
  EXPECT_FALSE(IsQuantLevel(0));
  EXPECT_FALSE(IsQuantLevel(3));
  EXPECT_FALSE(IsQuantLevel(64));
}

TEST(CapacityTest, HalvesAsLevelDoubles) {
  const size_t dims = 16;
  const uint32_t block = 8192;
  uint32_t prev = QuantPageCapacity(dims, 1, block);
  EXPECT_EQ(prev, (8192u - 8u) * 8u / 16u);
  for (unsigned g : {2u, 4u, 8u, 16u}) {
    const uint32_t cap = QuantPageCapacity(dims, g, block);
    EXPECT_EQ(cap, prev / 2);
    prev = cap;
  }
  // Exact level counts the inline point id.
  EXPECT_EQ(QuantPageCapacity(dims, 32, block),
            (8192u - 8u) * 8u / (32u + 32u * 16u));
}

TEST(CapacityTest, BestQuantLevelPicksFinestFit) {
  const size_t dims = 16;
  const uint32_t block = 8192;
  // One point always fits exactly.
  EXPECT_EQ(BestQuantLevel(dims, 1, block), 32u);
  // More points than the 1-bit capacity fit nothing.
  const uint32_t c1 = QuantPageCapacity(dims, 1, block);
  EXPECT_EQ(BestQuantLevel(dims, c1 + 1, block), 0u);
  EXPECT_EQ(BestQuantLevel(dims, c1, block), 1u);
  const uint32_t c4 = QuantPageCapacity(dims, 4, block);
  EXPECT_EQ(BestQuantLevel(dims, c4, block), 4u);
}

TEST(SplitTreeCountTest, PaperSolutionCount) {
  // §3.5: "there are 458,330 potential solutions how to quantize a
  // single initial partition" — this pins the ladder to doubling g:
  // S(32) = 1, S(g) = 1 + S(2g)^2.
  uint64_t s = 1;
  for (int level = 0; level < 5; ++level) s = 1 + s * s;
  EXPECT_EQ(s, 458330u);
}

TEST(DirectoryRoundTripTest, PreservesEntries) {
  MemoryStorage storage;
  auto file = storage.Create("dir");
  ASSERT_TRUE(file.ok());
  IndexMeta meta;
  meta.dims = 4;
  meta.total_points = 1234;
  meta.block_size = 8192;
  meta.metric = 1;
  meta.fractal_dimension = 2.75;
  meta.quantized = 1;
  std::vector<DirEntry> entries;
  Rng rng(3);
  for (int i = 0; i < 17; ++i) {
    DirEntry entry;
    std::vector<float> lb(4), ub(4);
    for (size_t j = 0; j < 4; ++j) {
      lb[j] = static_cast<float>(rng.Uniform());
      ub[j] = lb[j] + static_cast<float>(rng.Uniform());
    }
    entry.mbr = Mbr::FromBounds(lb, ub);
    entry.qpage_block = static_cast<uint32_t>(i);
    entry.count = static_cast<uint32_t>(10 + i);
    entry.quant_bits = kQuantLevels[i % 6];
    entry.exact = Extent{static_cast<uint64_t>(i) * 100, 97};
    entries.push_back(std::move(entry));
  }
  ASSERT_TRUE(WriteDirectory(**file, meta, entries).ok());
  std::vector<DirEntry> loaded;
  auto loaded_meta = ReadDirectory(**file, &loaded);
  ASSERT_TRUE(loaded_meta.ok()) << loaded_meta.status().ToString();
  EXPECT_EQ(loaded_meta->dims, meta.dims);
  EXPECT_EQ(loaded_meta->total_points, meta.total_points);
  EXPECT_DOUBLE_EQ(loaded_meta->fractal_dimension, meta.fractal_dimension);
  ASSERT_EQ(loaded.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(loaded[i].mbr, entries[i].mbr);
    EXPECT_EQ(loaded[i].qpage_block, entries[i].qpage_block);
    EXPECT_EQ(loaded[i].count, entries[i].count);
    EXPECT_EQ(loaded[i].quant_bits, entries[i].quant_bits);
    EXPECT_EQ(loaded[i].exact, entries[i].exact);
  }
}

TEST(DirectoryRoundTripTest, CorruptionDetected) {
  MemoryStorage storage;
  auto file = storage.Create("dir");
  ASSERT_TRUE(file.ok());
  const char junk[100] = "garbage";
  ASSERT_TRUE((*file)->Write(0, sizeof(junk), junk).ok());
  std::vector<DirEntry> entries;
  EXPECT_TRUE(ReadDirectory(**file, &entries).status().IsCorruption());
}

TEST(QuantPageCodecTest, CellsRoundTrip) {
  const size_t dims = 8;
  const uint32_t block = 4096;
  QuantPageCodec codec(dims, block);
  Rng rng(9);
  for (unsigned g : {1u, 2u, 4u, 8u, 16u}) {
    const uint32_t count =
        std::min<uint32_t>(QuantPageCapacity(dims, g, block), 50);
    std::vector<uint32_t> cells(count * dims);
    for (uint32_t& c : cells) {
      c = static_cast<uint32_t>(rng.Index(uint64_t{1} << g));
    }
    std::vector<uint8_t> page(block);
    ASSERT_TRUE(codec.EncodeCells(g, cells, page.data()).ok());
    auto header = codec.DecodeHeader(page.data());
    ASSERT_TRUE(header.ok());
    EXPECT_EQ(header->bits, g);
    EXPECT_EQ(header->count, count);
    std::vector<uint32_t> decoded;
    ASSERT_TRUE(codec.DecodeCells(page.data(), &decoded).ok());
    EXPECT_EQ(decoded, cells);
  }
}

TEST(QuantPageCodecTest, ExactRoundTrip) {
  const size_t dims = 5;
  const uint32_t block = 4096;
  QuantPageCodec codec(dims, block);
  std::vector<PointId> ids{3, 1, 4, 159};
  std::vector<float> coords(ids.size() * dims);
  for (size_t i = 0; i < coords.size(); ++i) {
    coords[i] = static_cast<float>(i) * 0.125f;
  }
  std::vector<uint8_t> page(block);
  ASSERT_TRUE(codec.EncodeExact(ids, coords, page.data()).ok());
  std::vector<PointId> got_ids;
  std::vector<float> got_coords;
  ASSERT_TRUE(codec.DecodeExact(page.data(), &got_ids, &got_coords).ok());
  EXPECT_EQ(got_ids, ids);
  EXPECT_EQ(got_coords, coords);
}

TEST(QuantPageCodecTest, RejectsOverCapacityAndBadPages) {
  const size_t dims = 16;
  const uint32_t block = 4096;
  QuantPageCodec codec(dims, block);
  const uint32_t cap = QuantPageCapacity(dims, 16, block);
  std::vector<uint32_t> too_many((cap + 1) * dims, 0);
  std::vector<uint8_t> page(block);
  EXPECT_TRUE(codec.EncodeCells(16, too_many, page.data())
                  .IsInvalidArgument());
  // Garbage page: header decode fails.
  std::vector<uint8_t> garbage(block, 0x5A);
  EXPECT_TRUE(codec.DecodeHeader(garbage.data()).status().IsCorruption());
  // Decoding the wrong page kind fails.
  std::vector<uint32_t> cells(dims, 1);
  ASSERT_TRUE(codec.EncodeCells(2, cells, page.data()).ok());
  std::vector<PointId> ids;
  std::vector<float> coords;
  EXPECT_FALSE(codec.DecodeExact(page.data(), &ids, &coords).ok());
}

TEST(ExactPageCodecTest, RoundTripAndSizeCheck) {
  const size_t dims = 3;
  ExactPageCodec codec(dims);
  std::vector<PointId> ids{10, 20, 30};
  std::vector<float> coords{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<uint8_t> buf;
  codec.Encode(ids, coords, &buf);
  EXPECT_EQ(buf.size(), codec.PageBytes(3));
  std::vector<PointId> got_ids;
  std::vector<float> got_coords;
  ASSERT_TRUE(codec.Decode(buf.data(), buf.size(), &got_ids,
                           &got_coords).ok());
  EXPECT_EQ(got_ids, ids);
  EXPECT_EQ(got_coords, coords);
  // Truncated payload detected.
  EXPECT_TRUE(codec.Decode(buf.data(), buf.size() - 1, &got_ids, &got_coords)
                  .IsCorruption());
}

}  // namespace
}  // namespace iq
