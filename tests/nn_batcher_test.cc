#include "sched/nn_batcher.h"

#include <vector>

#include <gtest/gtest.h>

namespace iq {
namespace {

DiskParameters TestDisk() {
  return DiskParameters{0.010, 0.002, 8192};  // v = 5
}

TEST(NnBatcherTest, ZeroProbabilityNeighborsLoadOnlyPivot) {
  const auto range = PlanNnBatch(10, 100, TestDisk(),
                                 [](uint64_t) { return 0.0; });
  EXPECT_EQ(range, (BatchRange{10, 10}));
}

TEST(NnBatcherTest, CertainNeighborsExtendTheRange) {
  // Probability 1 next to the pivot: c = t_xfer - (t_seek + t_xfer) < 0,
  // so the range must extend in both directions.
  const auto range = PlanNnBatch(10, 100, TestDisk(), [](uint64_t i) {
    return (i >= 9 && i <= 12) ? 1.0 : 0.0;
  });
  EXPECT_EQ(range, (BatchRange{9, 12}));
}

TEST(NnBatcherTest, ProbabilityThresholdMatchesCostBalance) {
  // A single forward neighbor at distance 1: extend iff
  // t_xfer - p*(t_seek + t_xfer) < 0, i.e. p > 2/12 = 1/6.
  auto range_for = [&](double p) {
    return PlanNnBatch(10, 100, TestDisk(), [p](uint64_t i) {
      return i == 11 ? p : 0.0;
    });
  };
  EXPECT_EQ(range_for(0.10), (BatchRange{10, 10}));
  EXPECT_EQ(range_for(0.30), (BatchRange{10, 11}));
}

TEST(NnBatcherTest, GapBridgedByProbableFarPage) {
  // A very probable page 3 positions ahead: the cumulated balance over
  // the two empty gap pages (2 * t_xfer = 4ms) is outweighed by the
  // expected seek saving (p * 12ms), so the gap is over-read.
  const auto range = PlanNnBatch(10, 100, TestDisk(), [](uint64_t i) {
    return i == 13 ? 0.9 : 0.0;
  });
  EXPECT_EQ(range, (BatchRange{10, 13}));
}

TEST(NnBatcherTest, SearchStopsAfterSeekWorthOfDeadPages) {
  // v = 5 dead pages accumulate ccb = 5 * t_xfer = t_seek: stop. A
  // probable page beyond that horizon must NOT extend the range.
  const auto range = PlanNnBatch(10, 100, TestDisk(), [](uint64_t i) {
    return i == 17 ? 1.0 : 0.0;  // 7 positions ahead
  });
  EXPECT_EQ(range, (BatchRange{10, 10}));
}

TEST(NnBatcherTest, RespectsFileBounds) {
  const auto at_start = PlanNnBatch(0, 5, TestDisk(),
                                    [](uint64_t) { return 1.0; });
  EXPECT_EQ(at_start.first, 0u);
  EXPECT_EQ(at_start.last, 4u);
  const auto at_end = PlanNnBatch(4, 5, TestDisk(),
                                  [](uint64_t) { return 1.0; });
  EXPECT_EQ(at_end.first, 0u);
  EXPECT_EQ(at_end.last, 4u);
  const auto single = PlanNnBatch(0, 1, TestDisk(),
                                  [](uint64_t) { return 1.0; });
  EXPECT_EQ(single, (BatchRange{0, 0}));
}

TEST(NnBatcherTest, BackwardSearchSymmetric) {
  const auto range = PlanNnBatch(10, 100, TestDisk(), [](uint64_t i) {
    return i == 7 ? 0.9 : 0.0;
  });
  EXPECT_EQ(range, (BatchRange{7, 10}));
}

}  // namespace
}  // namespace iq
