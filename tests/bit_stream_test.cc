#include "quant/bit_stream.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace iq {
namespace {

TEST(BitStreamTest, SingleBits) {
  std::vector<uint8_t> buf(2, 0);
  BitWriter writer(buf.data());
  const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1};
  for (int b : pattern) writer.Put(static_cast<uint32_t>(b), 1);
  writer.Flush();
  BitReader reader(buf.data());
  for (int b : pattern) {
    EXPECT_EQ(reader.Get(1), static_cast<uint32_t>(b));
  }
}

TEST(BitStreamTest, CrossByteFields) {
  std::vector<uint8_t> buf(8, 0);
  BitWriter writer(buf.data());
  writer.Put(0x5, 3);
  writer.Put(0x1F3, 9);  // crosses a byte boundary
  writer.Put(0xABCD, 16);
  writer.Flush();
  BitReader reader(buf.data());
  EXPECT_EQ(reader.Get(3), 0x5u);
  EXPECT_EQ(reader.Get(9), 0x1F3u);
  EXPECT_EQ(reader.Get(16), 0xABCDu);
}

TEST(BitStreamTest, FullWidth32) {
  std::vector<uint8_t> buf(12, 0);
  BitWriter writer(buf.data(), 4);  // non-zero start offset
  writer.Put(0xDEADBEEF, 32);
  writer.Put(0x0, 1);
  writer.Put(0xFFFFFFFF, 32);
  writer.Flush();
  BitReader reader(buf.data(), 4);
  EXPECT_EQ(reader.Get(32), 0xDEADBEEFu);
  EXPECT_EQ(reader.Get(1), 0u);
  EXPECT_EQ(reader.Get(32), 0xFFFFFFFFu);
}

TEST(BitStreamTest, ValueMaskedToWidth) {
  std::vector<uint8_t> buf(4, 0);
  BitWriter writer(buf.data());
  writer.Put(0xFF, 4);  // only the low 4 bits survive
  writer.Put(0x0, 4);
  writer.Flush();
  BitReader reader(buf.data());
  EXPECT_EQ(reader.Get(4), 0xFu);
  EXPECT_EQ(reader.Get(4), 0u);
}

TEST(BitStreamTest, SeekRepositions) {
  std::vector<uint8_t> buf(4, 0);
  BitWriter writer(buf.data());
  writer.Put(0xA, 4);
  writer.Put(0xB, 4);
  writer.Put(0xC, 4);
  writer.Flush();
  BitReader reader(buf.data());
  reader.Seek(8);
  EXPECT_EQ(reader.Get(4), 0xCu);
  reader.Seek(4);
  EXPECT_EQ(reader.Get(4), 0xBu);
}

/// Property: random sequences of mixed widths round-trip.
TEST(BitStreamTest, RandomRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t count = 1 + rng.Index(200);
    std::vector<unsigned> widths(count);
    std::vector<uint32_t> values(count);
    size_t total_bits = 0;
    for (size_t i = 0; i < count; ++i) {
      widths[i] = 1 + static_cast<unsigned>(rng.Index(32));
      const uint64_t mask =
          widths[i] == 32 ? 0xFFFFFFFFull : ((1ull << widths[i]) - 1);
      values[i] = static_cast<uint32_t>(rng.Index(1ull << 32) & mask);
      total_bits += widths[i];
    }
    std::vector<uint8_t> buf((total_bits + 7) / 8, 0);
    BitWriter writer(buf.data());
    for (size_t i = 0; i < count; ++i) writer.Put(values[i], widths[i]);
    EXPECT_EQ(writer.bit_position(), total_bits);
    writer.Flush();
    BitReader reader(buf.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(reader.Get(widths[i]), values[i]) << "field " << i;
    }
  }
}

/// Contract: width-0 operations are no-ops — they return/store 0 and
/// never touch the buffer or advance the cursor (bit_stream.h).
TEST(BitStreamTest, WidthZeroReadsReturnZeroWithoutAdvancing) {
  std::vector<uint8_t> buf(2, 0);
  BitWriter writer(buf.data());
  writer.Put(0x2A, 7);
  writer.Flush();
  BitReader reader(buf.data());
  EXPECT_EQ(reader.Get(0), 0u);
  EXPECT_EQ(reader.bit_position(), 0u);
  EXPECT_EQ(reader.Get(3), 0x2u);  // low bits of 0x2A, unaffected
  EXPECT_EQ(reader.Get(0), 0u);    // interleaved mid-stream
  EXPECT_EQ(reader.bit_position(), 3u);
  EXPECT_EQ(reader.Get(4), 0x5u);  // remaining bits of 0x2A
}

TEST(BitStreamTest, WidthZeroWritesNothing) {
  std::vector<uint8_t> buf(1, 0);
  BitWriter writer(buf.data());
  writer.Put(0xFFFFFFFF, 0);  // value bits must be ignored entirely
  EXPECT_EQ(writer.bit_position(), 0u);
  writer.Put(0x3, 2);
  writer.Put(0xFFFFFFFF, 0);
  EXPECT_EQ(writer.bit_position(), 2u);
  writer.Flush();
  EXPECT_EQ(buf[0], 0x3u);
}

/// Contract: sub-byte tails are staged in the writer and only reach
/// the buffer on Flush() (bit_stream.h).
TEST(BitStreamTest, PartialByteStagedUntilFlush) {
  std::vector<uint8_t> buf(2, 0);
  BitWriter writer(buf.data());
  writer.Put(0xFF, 8);
  writer.Put(0x7, 3);  // stays staged: byte 1 untouched until Flush
  EXPECT_EQ(buf[0], 0xFFu);
  EXPECT_EQ(buf[1], 0u);
  EXPECT_EQ(writer.bit_position(), 11u);
  writer.Flush();
  EXPECT_EQ(buf[1], 0x7u);
}

/// Contract: a second writer may append at the first one's end
/// position — the constructor preloads the shared partial byte, and
/// Flush() OR-writes it back (bit_stream.h).
TEST(BitStreamTest, AppendAfterFlushAtSubByteOffset) {
  std::vector<uint8_t> buf(2, 0);
  BitWriter first(buf.data());
  first.Put(0x15, 5);
  first.Flush();
  BitWriter second(buf.data(), first.bit_position());
  second.Put(0x5B, 7);
  second.Flush();
  EXPECT_EQ(second.bit_position(), 12u);
  BitReader reader(buf.data());
  EXPECT_EQ(reader.Get(5), 0x15u);
  EXPECT_EQ(reader.Get(7), 0x5Bu);
}

TEST(BitStreamTest, CheckedWidthZeroSucceedsEvenAtBufferEnd) {
  std::vector<uint8_t> buf(1, 0xFF);
  CheckedBitReader reader{std::span<const uint8_t>(buf)};
  uint32_t value = 0;
  ASSERT_TRUE(reader.Get(8, &value).ok());
  EXPECT_EQ(value, 0xFFu);
  EXPECT_EQ(reader.bits_remaining(), 0u);
  // At the very end: a width-0 read still succeeds and stores 0...
  value = 123;
  ASSERT_TRUE(reader.Get(0, &value).ok());
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(reader.bit_position(), 8u);
  // ...while any wider read reports OutOfRange.
  EXPECT_FALSE(reader.Get(1, &value).ok());
}

}  // namespace
}  // namespace iq
