#include "shard/query_front_end.h"

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/generators.h"
#include "io/disk_model.h"
#include "io/storage.h"
#include "obs/flight_recorder.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/sharded_bulk_loader.h"
#include "shard/sharded_searcher.h"

namespace iq {
namespace {

struct Fixture {
  MemoryStorage storage;
  Dataset data;
  Dataset queries;
  std::unique_ptr<ShardedSearcher> searcher;
};

Fixture MakeFixture() {
  Fixture f;
  f.data = GenerateUniform(160, 4, 41);
  f.queries = f.data.TakeTail(8);
  ShardedBulkLoader::Options loader_options;
  loader_options.num_shards = 3;
  ShardedBulkLoader loader(f.storage, "fe", loader_options);
  for (size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_TRUE(loader.Add(f.data[i]).ok());
  }
  auto manifest = loader.Finish();
  EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
  auto searcher = ShardedSearcher::Open(f.storage, *manifest);
  EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
  f.searcher = std::move(searcher).value();
  return f;
}

TEST(QueryFrontEndTest, PassesQueriesThroughUnchanged) {
  Fixture f = MakeFixture();
  QueryFrontEnd front_end(*f.searcher);
  for (size_t qi = 0; qi < f.queries.size(); ++qi) {
    const PointView q = f.queries[qi];
    auto direct = f.searcher->KNearestNeighbors(q, 7);
    auto admitted = front_end.KNearestNeighbors(q, 7);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
    EXPECT_EQ(*direct, *admitted);
  }
  auto range = front_end.RangeSearch(f.queries[0], 0.4);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, *f.searcher->RangeSearch(f.queries[0], 0.4));
  const Mbr window = Mbr::FromBounds(std::vector<float>(4, 0.1f),
                                     std::vector<float>(4, 0.8f));
  auto ids = front_end.WindowQuery(window);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, *f.searcher->WindowQuery(window));
  EXPECT_EQ(front_end.in_flight(), 0u);
  EXPECT_EQ(front_end.queued(), 0u);
}

TEST(QueryFrontEndTest, RejectsWhenQueueIsFull) {
  Fixture f = MakeFixture();
  // max_in_flight = 0 admits nothing, max_queued = 0 queues nobody:
  // every query is rejected immediately — deterministically.
  QueryFrontEnd front_end(*f.searcher,
                          QueryFrontEnd::Options{/*max_in_flight=*/0,
                                                 /*max_queued=*/0,
                                                 /*default_deadline_s=*/0});
  const uint64_t rejected_before =
      obs::MetricRegistry::Global()
          .GetCounter(obs::metric::kFrontendRejectedTotal)
          ->Value();
  auto result = front_end.KNearestNeighbors(f.queries[0], 3);
  EXPECT_TRUE(result.status().IsUnavailable()) << result.status().ToString();
  if (obs::kEnabled) {
    EXPECT_EQ(obs::MetricRegistry::Global()
                  .GetCounter(obs::metric::kFrontendRejectedTotal)
                  ->Value(),
              rejected_before + 1);
  }
}

TEST(QueryFrontEndTest, QueuedQueryFailsWhenDeadlineExpires) {
  Fixture f = MakeFixture();
  // A slot never frees (max_in_flight = 0), so the queued caller can
  // only leave via its deadline.
  QueryFrontEnd::Options options;
  options.max_in_flight = 0;
  options.max_queued = 1;
  options.default_deadline_s = 0.02;
  QueryFrontEnd front_end(*f.searcher, options);
  auto result = front_end.KNearestNeighbors(f.queries[0], 3);
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  EXPECT_EQ(front_end.queued(), 0u);
  EXPECT_EQ(front_end.in_flight(), 0u);
}

TEST(QueryFrontEndTest, PerQueryDeadlineOverridesDefault) {
  Fixture f = MakeFixture();
  QueryFrontEnd::Options options;
  options.max_in_flight = 0;
  options.max_queued = 1;
  options.default_deadline_s = 3600;  // would hang without the override
  QueryFrontEnd front_end(*f.searcher, options);
  ShardedSearchOptions query_options;
  query_options.deadline_s = 0.02;
  auto result = front_end.KNearestNeighbors(f.queries[0], 3, query_options);
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
}

TEST(QueryFrontEndTest, ConcurrentQueriesAllSucceedWithinBounds) {
  Fixture f = MakeFixture();
  QueryFrontEnd::Options options;
  options.max_in_flight = 2;
  options.max_queued = 64;  // wide enough that nobody is rejected
  QueryFrontEnd front_end(*f.searcher, options);

  std::vector<std::vector<Neighbor>> expected;
  for (size_t qi = 0; qi < f.queries.size(); ++qi) {
    auto r = f.searcher->KNearestNeighbors(f.queries[qi], 5);
    ASSERT_TRUE(r.ok());
    expected.push_back(*r);
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < 5; ++round) {
        const size_t qi = (t + round) % f.queries.size();
        auto r = front_end.KNearestNeighbors(f.queries[qi], 5);
        if (!r.ok()) {
          failures.fetch_add(1);
        } else if (*r != expected[qi]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(front_end.in_flight(), 0u);
  EXPECT_EQ(front_end.queued(), 0u);
}

TEST(QueryFrontEndTest, CountsAdmissionsInRegistry) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Fixture f = MakeFixture();
  QueryFrontEnd front_end(*f.searcher);
  auto* admitted = obs::MetricRegistry::Global().GetCounter(
      obs::metric::kFrontendAdmittedTotal);
  const uint64_t before = admitted->Value();
  ASSERT_TRUE(front_end.KNearestNeighbors(f.queries[0], 3).ok());
  ASSERT_TRUE(front_end.RangeSearch(f.queries[0], 0.3).ok());
  EXPECT_EQ(admitted->Value(), before + 2);
}

/// The tentpole contract of ISSUE 9, front-end side: a query through
/// the front end records one stitched tree rooted at `frontend`, with
/// `queue_wait` and `admission` children and the whole sharded fan-out
/// grafted underneath.
TEST(QueryFrontEndTest, StitchedTraceRootsAtFrontend) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Fixture f = MakeFixture();
  QueryFrontEnd front_end(*f.searcher);
  obs::QueryTracer tracer;
  ShardedSearchOptions options;
  options.tracer = &tracer;
  ASSERT_TRUE(front_end.KNearestNeighbors(f.queries[0], 3, options).ok());
  const std::vector<obs::SpanRecord> spans = tracer.Snapshot();

  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans[0].name, "frontend");
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  size_t roots = 0;
  bool saw_queue_wait = false;
  bool saw_admission = false;
  bool saw_sharded_root = false;
  for (const obs::SpanRecord& span : spans) {
    if (span.parent == obs::kNoSpan) ++roots;
    if (span.name == "queue_wait") {
      saw_queue_wait = true;
      EXPECT_EQ(spans[span.parent].name, "frontend");
      bool has_wait = false;
      for (const auto& [key, value] : span.attrs) {
        if (key == "wait_s") has_wait = value >= 0;
      }
      EXPECT_TRUE(has_wait);
    }
    if (span.name == "admission") {
      saw_admission = true;
      EXPECT_EQ(spans[span.parent].name, "frontend");
      for (const auto& [key, value] : span.attrs) {
        if (key == "admitted") {
          EXPECT_EQ(value, 1.0);
        }
        if (key == "rejected") {
          EXPECT_EQ(value, 0.0);
        }
      }
    }
    if (span.name == "sharded_knn") {
      saw_sharded_root = true;
      EXPECT_EQ(spans[span.parent].name, "frontend");
    }
  }
  EXPECT_EQ(roots, 1u);  // everything hangs under the frontend span
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_admission);
  EXPECT_TRUE(saw_sharded_root);
}

TEST(QueryFrontEndTest, ObservesQueueWaitInHistogram) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Fixture f = MakeFixture();
  QueryFrontEnd front_end(*f.searcher);
  static constexpr double kBounds[] = {1e-5, 1e-4, 1e-3, 1e-2,
                                       0.1,  1.0,  10.0};
  auto* queue_wait = obs::MetricRegistry::Global().GetHistogram(
      obs::metric::kFrontendQueueWaitSeconds, kBounds);
  const uint64_t before = queue_wait->count();
  ASSERT_TRUE(front_end.KNearestNeighbors(f.queries[0], 3).ok());
  EXPECT_EQ(queue_wait->count(), before + 1);
}

TEST(QueryFrontEndTest, RejectionTriggersFlightDump) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Fixture f = MakeFixture();
  obs::FlightRecorder::Global().Clear();
  QueryFrontEnd front_end(*f.searcher,
                          QueryFrontEnd::Options{/*max_in_flight=*/0,
                                                 /*max_queued=*/0,
                                                 /*default_deadline_s=*/0});
  auto result = front_end.KNearestNeighbors(f.queries[0], 3);
  EXPECT_TRUE(result.status().IsUnavailable());
  auto& recorder = obs::FlightRecorder::Global();
  EXPECT_GE(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.last_dump_reason(), "rejected");
  const std::string dump = recorder.last_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"admission_reject\""), std::string::npos);
}

TEST(QueryFrontEndTest, QueueDeadlineTriggersFlightDump) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Fixture f = MakeFixture();
  obs::FlightRecorder::Global().Clear();
  QueryFrontEnd::Options options;
  options.max_in_flight = 0;
  options.max_queued = 1;
  options.default_deadline_s = 0.02;
  QueryFrontEnd front_end(*f.searcher, options);
  auto result = front_end.KNearestNeighbors(f.queries[0], 3);
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  auto& recorder = obs::FlightRecorder::Global();
  EXPECT_GE(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.last_dump_reason(), "deadline_exceeded");
  const std::string dump = recorder.last_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"deadline_exceeded\""), std::string::npos);
}

/// The IQ_OBS_DISABLED counterpart of the metric tests above: with
/// observability compiled out, queries still flow and every telemetry
/// surface reads as inert.
TEST(QueryFrontEndTest, DisabledBuildKeepsQueriesWorkingWithoutTelemetry) {
  if (obs::kEnabled) {
    GTEST_SKIP() << "covers the IQ_OBS_DISABLED configuration";
  }
  Fixture f = MakeFixture();
  QueryFrontEnd front_end(*f.searcher);
  obs::QueryTracer tracer;
  ShardedSearchOptions options;
  options.tracer = &tracer;
  auto result = front_end.KNearestNeighbors(f.queries[0], 3, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *f.searcher->KNearestNeighbors(f.queries[0], 3));
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(obs::MetricRegistry::Global()
                .GetCounter(obs::metric::kFrontendAdmittedTotal)
                ->Value(),
            0u);
  auto& recorder = obs::FlightRecorder::Global();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.last_dump().empty());
}

}  // namespace
}  // namespace iq
