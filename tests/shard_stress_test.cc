// Concurrency stress for the sharded query engine: many client
// threads hammer one QueryFrontEnd with a mix of unbounded and
// tiny-deadline queries while a poller reads stats, so TSan (the
// `thread` CI leg) sees admission, queueing, deadline expiry,
// reject-on-full, scatter-gather fan-out, and stats publication all
// racing each other.

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/generators.h"
#include "io/storage.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "shard/query_front_end.h"
#include "shard/sharded_bulk_loader.h"
#include "shard/sharded_searcher.h"

namespace iq {
namespace {

struct Fixture {
  MemoryStorage storage;
  Dataset data;
  Dataset queries;
  std::unique_ptr<ShardedSearcher> searcher;
  std::vector<std::vector<Neighbor>> expected;
};

Fixture MakeFixture() {
  Fixture f;
  f.data = GenerateClustered(300, 4, 53, {});
  f.queries = f.data.TakeTail(10);
  ShardedBulkLoader::Options loader_options;
  loader_options.num_shards = 4;
  loader_options.plan = ShardPlan::kRankPartition;
  ShardedBulkLoader loader(f.storage, "stress", loader_options);
  for (size_t i = 0; i < f.data.size(); ++i) {
    EXPECT_TRUE(loader.Add(f.data[i]).ok());
  }
  auto manifest = loader.Finish();
  EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
  ShardedSearcher::Options searcher_options;
  searcher_options.threads = 3;
  auto searcher = ShardedSearcher::Open(f.storage, *manifest, searcher_options);
  EXPECT_TRUE(searcher.ok()) << searcher.status().ToString();
  f.searcher = std::move(searcher).value();
  for (size_t qi = 0; qi < f.queries.size(); ++qi) {
    auto r = f.searcher->KNearestNeighbors(f.queries[qi], 5);
    EXPECT_TRUE(r.ok());
    f.expected.push_back(*r);
  }
  return f;
}

TEST(ShardStressTest, FrontEndUnderContention) {
  Fixture f = MakeFixture();
  QueryFrontEnd::Options options;
  options.max_in_flight = 2;
  options.max_queued = 2;
  QueryFrontEnd front_end(*f.searcher, options);

  constexpr size_t kThreads = 8;
  constexpr size_t kQueriesPerThread = 30;
  std::atomic<size_t> ok{0};
  std::atomic<size_t> rejected{0};
  std::atomic<size_t> deadline{0};
  std::atomic<size_t> wrong{0};

  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kQueriesPerThread; ++i) {
        const size_t qi = (t * kQueriesPerThread + i) % f.queries.size();
        ShardedSearchOptions query_options;
        // Every third query carries a deadline it cannot possibly
        // meet, exercising expiry both in the queue and mid-search.
        if (i % 3 == 2) query_options.deadline_s = 1e-9;
        auto r =
            front_end.KNearestNeighbors(f.queries[qi], 5, query_options);
        if (r.ok()) {
          ok.fetch_add(1);
          if (*r != f.expected[qi]) wrong.fetch_add(1);
        } else if (r.status().IsUnavailable()) {
          rejected.fetch_add(1);
        } else if (r.status().IsDeadlineExceeded()) {
          deadline.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected status: " << r.status().ToString();
        }
      }
    });
  }

  // A poller racing the clients: reads must be clean under TSan.
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      (void)f.searcher->last_query_stats();
      (void)front_end.in_flight();
      (void)front_end.queued();
      std::this_thread::yield();
    }
  });

  for (auto& thread : clients) thread.join();
  stop.store(true);
  poller.join();

  EXPECT_EQ(ok.load() + rejected.load() + deadline.load(),
            kThreads * kQueriesPerThread);
  // Every admitted-and-completed query returned the exact answer.
  EXPECT_EQ(wrong.load(), 0u);
  // With only 2 slots + 2 queue spots for 8 clients, at least one
  // query of every outcome class should occur; "ok" is the only one
  // guaranteed (the no-deadline majority always completes eventually).
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(front_end.in_flight(), 0u);
  EXPECT_EQ(front_end.queued(), 0u);
}

/// The flight recorder's reader APIs racing its single-producer
/// rings: clients record control-plane events through the front end
/// while a poller snapshots, dumps, and clears the recorder
/// mid-query. TSan must see no races (slot words are atomics; dump
/// state is under the rank-90 leaf mutex), and torn slot decodes must
/// never crash the JSON encoder.
TEST(ShardStressTest, FlightRecorderDrainRacesQueries) {
  Fixture f = MakeFixture();
  obs::FlightRecorder::Global().Clear();
  QueryFrontEnd::Options options;
  options.max_in_flight = 2;
  options.max_queued = 2;
  QueryFrontEnd front_end(*f.searcher, options);

  constexpr size_t kThreads = 6;
  constexpr size_t kQueriesPerThread = 25;
  std::atomic<size_t> completed{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kQueriesPerThread; ++i) {
        const size_t qi = (t * kQueriesPerThread + i) % f.queries.size();
        ShardedSearchOptions query_options;
        if (i % 4 == 3) query_options.deadline_s = 1e-9;
        (void)front_end.KNearestNeighbors(f.queries[qi], 5, query_options);
        completed.fetch_add(1);
      }
    });
  }

  // The racing poller: drains the recorder every way it can while the
  // clients are still appending to their rings.
  std::atomic<bool> stop{false};
  std::atomic<size_t> drained{0};
  std::thread poller([&] {
    auto& recorder = obs::FlightRecorder::Global();
    while (!stop.load()) {
      drained.fetch_add(recorder.Snapshot().size());
      recorder.TriggerDump("on_demand");
      (void)recorder.last_dump();
      (void)recorder.last_dump_reason();
      (void)recorder.recorded();
      (void)recorder.dropped();
      recorder.Clear();
      std::this_thread::yield();
    }
  });

  for (auto& thread : clients) thread.join();
  stop.store(true);
  poller.join();

  EXPECT_EQ(completed.load(), kThreads * kQueriesPerThread);
  if (obs::kEnabled) {
    // The poller observed live traffic (Clear() rewinds, so only the
    // drained running total proves events flowed through).
    EXPECT_GT(drained.load() + obs::FlightRecorder::Global().recorded(),
              0u);
  }
}

TEST(ShardStressTest, BareSearcherSharedAcrossThreads) {
  Fixture f = MakeFixture();
  std::atomic<size_t> failures{0};
  std::atomic<size_t> wrong{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < 20; ++i) {
        const size_t qi = (t + i) % f.queries.size();
        auto r = f.searcher->KNearestNeighbors(f.queries[qi], 5);
        if (!r.ok()) {
          failures.fetch_add(1);
        } else if (*r != f.expected[qi]) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u);
}

}  // namespace
}  // namespace iq
