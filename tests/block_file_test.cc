#include "io/block_file.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace iq {
namespace {

class BlockFileTest : public ::testing::Test {
 protected:
  BlockFileTest() : disk_(DiskParameters{0.010, 0.002, 4096}) {}

  std::unique_ptr<BlockFile> Make() {
    auto bf = std::make_unique<BlockFile>();
    EXPECT_TRUE(bf->Open(storage_, "bf", disk_, /*create=*/true).ok());
    return bf;
  }

  std::vector<uint8_t> Block(uint8_t fill) {
    return std::vector<uint8_t>(4096, fill);
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(BlockFileTest, AppendAndReadBack) {
  auto bf = Make();
  auto b0 = bf->AppendBlock(Block(0xAA).data());
  auto b1 = bf->AppendBlock(Block(0xBB).data());
  ASSERT_TRUE(b0.ok());
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(*b0, 0u);
  EXPECT_EQ(*b1, 1u);
  EXPECT_EQ(bf->NumBlocks(), 2u);
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(bf->ReadBlock(1, buf.data()).ok());
  EXPECT_EQ(buf[0], 0xBB);
  EXPECT_EQ(buf[4095], 0xBB);
}

TEST_F(BlockFileTest, ReadRangeChargesOneAccess) {
  auto bf = Make();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(bf->AppendBlock(Block(static_cast<uint8_t>(i)).data()).ok());
  }
  disk_.ResetStats();
  disk_.InvalidateHead();
  std::vector<uint8_t> buf(4 * 4096);
  ASSERT_TRUE(bf->ReadRange(2, 4, buf.data()).ok());
  EXPECT_EQ(disk_.stats().seeks, 1u);
  EXPECT_EQ(disk_.stats().blocks_read, 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(buf[i * 4096], static_cast<uint8_t>(2 + i));
  }
}

TEST_F(BlockFileTest, ReadPastEndFails) {
  auto bf = Make();
  ASSERT_TRUE(bf->AppendBlock(Block(1).data()).ok());
  std::vector<uint8_t> buf(2 * 4096);
  Status s = bf->ReadRange(0, 2, buf.data());
  EXPECT_TRUE(s.IsOutOfRange());
}

TEST_F(BlockFileTest, OverwriteBlock) {
  auto bf = Make();
  ASSERT_TRUE(bf->AppendBlock(Block(1).data()).ok());
  ASSERT_TRUE(bf->WriteBlock(0, Block(9).data()).ok());
  std::vector<uint8_t> buf(4096);
  ASSERT_TRUE(bf->ReadBlock(0, buf.data()).ok());
  EXPECT_EQ(buf[0], 9);
  // Writing beyond NumBlocks() (leaving a hole) is rejected.
  EXPECT_TRUE(bf->WriteBlock(5, Block(2).data()).IsOutOfRange());
}

TEST_F(BlockFileTest, EmptyReadIsFree) {
  auto bf = Make();
  disk_.ResetStats();
  ASSERT_TRUE(bf->ReadRange(0, 0, nullptr).ok());
  EXPECT_EQ(disk_.stats().seeks, 0u);
}

}  // namespace
}  // namespace iq
