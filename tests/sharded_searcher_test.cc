#include "shard/sharded_searcher.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "io/disk_model.h"
#include "io/storage.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "shard/sharded_bulk_loader.h"

namespace iq {
namespace {

/// A single IqTree and a sharded layout built over the same point
/// stream, ready for result comparison.
struct Fixture {
  MemoryStorage storage;
  std::unique_ptr<DiskModel> disk;
  std::unique_ptr<IqTree> single;
  std::unique_ptr<ShardedSearcher> sharded;
};

Fixture MakeFixture(const Dataset& data, size_t num_shards,
                    ShardPlan plan = ShardPlan::kRoundRobin,
                    size_t batch_points = 32, size_t threads = 3) {
  Fixture f;
  f.disk = std::make_unique<DiskModel>(DiskParameters{});
  auto single = IqTree::Build(data, f.storage, "single", *f.disk, {});
  EXPECT_TRUE(single.ok()) << single.status().ToString();
  f.single = std::move(single).value();

  ShardedBulkLoader::Options loader_options;
  loader_options.num_shards = num_shards;
  loader_options.plan = plan;
  loader_options.batch_points = batch_points;
  ShardedBulkLoader loader(f.storage, "sharded", loader_options);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(loader.Add(data[i]).ok());
  }
  auto manifest = loader.Finish();
  EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();

  ShardedSearcher::Options searcher_options;
  searcher_options.threads = threads;
  auto sharded = ShardedSearcher::Open(f.storage, *manifest, searcher_options);
  EXPECT_TRUE(sharded.ok()) << sharded.status().ToString();
  f.sharded = std::move(sharded).value();
  return f;
}

/// The bit-identity contract: kNN, range, and window results of the
/// sharded facade match a single tree over the same stream exactly.
/// Window compares as sorted sets (the single tree returns page order;
/// the facade sorts ascending — same ids either way).
void ExpectQueriesMatch(const Fixture& f, const Dataset& queries) {
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const PointView q = queries[qi];
    for (size_t k : {size_t{1}, size_t{5}, size_t{17}}) {
      auto expected = f.single->KNearestNeighbors(q, k);
      auto actual = f.sharded->KNearestNeighbors(q, k);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(*expected, *actual) << "knn query " << qi << " k " << k;
    }
    auto expected_range = f.single->RangeSearch(q, 0.35);
    auto actual_range = f.sharded->RangeSearch(q, 0.35);
    ASSERT_TRUE(expected_range.ok());
    ASSERT_TRUE(actual_range.ok()) << actual_range.status().ToString();
    EXPECT_EQ(*expected_range, *actual_range) << "range query " << qi;
  }

  const size_t dims = queries.dims();
  const Mbr window = Mbr::FromBounds(std::vector<float>(dims, 0.2f),
                                     std::vector<float>(dims, 0.7f));
  auto expected_window = f.single->WindowQuery(window);
  auto actual_window = f.sharded->WindowQuery(window);
  ASSERT_TRUE(expected_window.ok());
  ASSERT_TRUE(actual_window.ok()) << actual_window.status().ToString();
  std::vector<PointId> expected_ids = *expected_window;
  std::sort(expected_ids.begin(), expected_ids.end());
  EXPECT_EQ(expected_ids, *actual_window);
}

TEST(ShardedSearcherTest, BitIdenticalToSingleTreeAcrossShardCounts) {
  // 403 points: with 7 shards the last round-robin shard is uneven.
  Dataset data = GenerateUniform(415, 6, 7);
  Dataset queries = data.TakeTail(12);
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    Fixture f = MakeFixture(data, num_shards);
    EXPECT_EQ(f.sharded->num_shards(), num_shards);
    EXPECT_EQ(f.sharded->size(), data.size());
    ExpectQueriesMatch(f, queries);
  }
}

TEST(ShardedSearcherTest, BitIdenticalUnderRankPartition) {
  Dataset data = GenerateCadLike(330, 6, 11);
  Dataset queries = data.TakeTail(10);
  Fixture f = MakeFixture(data, 4, ShardPlan::kRankPartition);
  ExpectQueriesMatch(f, queries);
}

TEST(ShardedSearcherTest, StreamingBatchSizeDoesNotChangeResults) {
  Dataset data = GenerateUniform(140, 4, 3);
  Dataset queries = data.TakeTail(5);
  Fixture tiny_batches = MakeFixture(data, 3, ShardPlan::kRoundRobin, 8);
  Fixture one_shot = MakeFixture(data, 3, ShardPlan::kRoundRobin, 100000);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto a = tiny_batches.sharded->KNearestNeighbors(queries[qi], 9);
    auto b = one_shot.sharded->KNearestNeighbors(queries[qi], 9);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(ShardedSearcherTest, KLargerThanDatasetReturnsEverything) {
  Dataset data = GenerateUniform(90, 4, 5);
  Dataset queries = data.TakeTail(2);
  Fixture f = MakeFixture(data, 4);
  auto expected = f.single->KNearestNeighbors(queries[0], 1000);
  auto actual = f.sharded->KNearestNeighbors(queries[0], 1000);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->size(), data.size());
  EXPECT_EQ(*expected, *actual);
}

/// Two well-separated blobs on dimension 0 under a rank partition:
/// the middle shards stay empty and the far blob's shard is pruned by
/// manifest-MBR MINDIST >= the kth distance found in the near shard.
TEST(ShardedSearcherTest, MbrPruningSkipsFarShardsOnClusteredData) {
  const size_t dims = 4;
  Dataset base = GenerateUniform(200, dims, 13);
  Dataset data(dims);
  for (size_t i = 0; i < base.size(); ++i) {
    std::vector<float> p(base[i].begin(), base[i].end());
    // Blob A: dim0 in [0.05, 0.15] -> shard 0 of 4. Blob B: dim0 in
    // [0.85, 0.95] -> shard 3. Shards 1 and 2 get nothing.
    p[0] = (i % 2 == 0) ? 0.05f + 0.1f * p[0] : 0.85f + 0.1f * p[0];
    data.Append(PointView(p.data(), dims));
  }

  // One worker thread => one shard per scatter wave, so the kth
  // distance from the near shard is known before the far shard would
  // be dispatched — the far blob must be MINDIST-pruned, not queried.
  Fixture f = MakeFixture(data, 4, ShardPlan::kRankPartition,
                          /*batch_points=*/32, /*threads=*/1);
  std::vector<float> q(data[0].begin(), data[0].end());
  auto expected = f.single->KNearestNeighbors(PointView(q.data(), dims), 5);
  auto actual = f.sharded->KNearestNeighbors(PointView(q.data(), dims), 5);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(*expected, *actual);

  const ShardQueryStats stats = f.sharded->last_query_stats();
  EXPECT_EQ(stats.shards_total, 4u);
  // One shard answered; the far blob was MINDIST-pruned and the two
  // empty middle shards never ran.
  EXPECT_EQ(stats.shards_queried, 1u);
  EXPECT_EQ(stats.shards_pruned, 3u);
}

TEST(ShardedSearcherTest, AggregatesQueryStatsAcrossShards) {
  Dataset data = GenerateUniform(210, 5, 17);
  Dataset queries = data.TakeTail(3);
  Fixture f = MakeFixture(data, 3);
  auto result = f.sharded->KNearestNeighbors(queries[0], 7);
  ASSERT_TRUE(result.ok());
  const ShardQueryStats stats = f.sharded->last_query_stats();
  EXPECT_EQ(stats.shards_total, 3u);
  EXPECT_EQ(stats.shards_queried + stats.shards_pruned, 3u);
  EXPECT_GT(stats.shards_queried, 0u);
  EXPECT_GT(stats.totals.pages_decoded, 0u);
  EXPECT_GT(stats.totals.blocks_transferred, 0u);
  EXPECT_GT(stats.io_s_max, 0.0);
  EXPECT_GE(stats.io_s_sum, stats.io_s_max);
  EXPECT_FALSE(stats.truncated);

  f.sharded->ResetQueryStats();
  EXPECT_EQ(f.sharded->last_query_stats().shards_total, 0u);
}

TEST(ShardedSearcherTest, ExpiredDeadlineFailsQuery) {
  Dataset data = GenerateUniform(120, 4, 19);
  Dataset queries = data.TakeTail(2);
  Fixture f = MakeFixture(data, 3);
  ShardedSearchOptions options;
  options.deadline_s = 1e-9;
  auto result = f.sharded->KNearestNeighbors(queries[0], 5, options);
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  auto range = f.sharded->RangeSearch(queries[0], 0.3, options);
  EXPECT_TRUE(range.status().IsDeadlineExceeded());
  const Mbr window = Mbr::FromBounds(std::vector<float>(4, 0.1f),
                                     std::vector<float>(4, 0.9f));
  auto ids = f.sharded->WindowQuery(window, options);
  EXPECT_TRUE(ids.status().IsDeadlineExceeded());
}

TEST(ShardedSearcherTest, OffersOneAggregateRecordPerQueryToSlowLog) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Dataset data = GenerateUniform(150, 4, 23);
  Dataset queries = data.TakeTail(3);
  Fixture f = MakeFixture(data, 3);

  obs::SlowLogOptions log_options;
  log_options.absolute_threshold_s = 0.0;
  log_options.quantile = 0.0;  // retain everything
  obs::SlowQueryLog log(log_options);
  ShardedSearchOptions options;
  options.slow_log = &log;
  ASSERT_TRUE(f.sharded->KNearestNeighbors(queries[0], 5, options).ok());
  EXPECT_EQ(log.offered(), 1u);
  ASSERT_EQ(log.retained(), 1u);
  const obs::SlowQueryRecord record = log.Snapshot()[0];
  EXPECT_FALSE(record.truncated);
  EXPECT_GT(record.observed_io_s, 0.0);
  EXPECT_GT(record.predicted.total(), 0.0);
  ASSERT_TRUE(f.sharded->RangeSearch(queries[1], 0.3, options).ok());
  EXPECT_EQ(log.offered(), 2u);
}

/// Satellite fix (ISSUE 8): sharded fan-out multiplies span volume, so
/// per-shard tracer drops must surface in the aggregate stats and mark
/// the slow-log record truncated.
TEST(ShardedSearcherTest, TracerDropsPropagateToStatsAndSlowLog) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Dataset data = GenerateUniform(150, 4, 29);
  Dataset queries = data.TakeTail(2);
  Fixture f = MakeFixture(data, 3);

  obs::QueryTracer tiny_tracer(/*max_spans=*/1);
  obs::SlowLogOptions log_options;
  log_options.quantile = 0.0;
  obs::SlowQueryLog log(log_options);
  ShardedSearchOptions options;
  options.tracer = &tiny_tracer;
  options.slow_log = &log;
  ASSERT_TRUE(f.sharded->KNearestNeighbors(queries[0], 5, options).ok());

  const ShardQueryStats stats = f.sharded->last_query_stats();
  EXPECT_GT(stats.dropped_spans, 0u);
  EXPECT_TRUE(stats.truncated);
  ASSERT_EQ(log.retained(), 1u);
  EXPECT_TRUE(log.Snapshot()[0].truncated);
}

/// The tentpole contract of ISSUE 9: one sharded query records one
/// stitched span tree — `sharded_knn` root, `wave<i>` children, and a
/// `shard<i>` span per shard (pruned shards as zero-cost annotated
/// leaves) with the shard's whole IQ-tree subtree grafted underneath —
/// and the tree's sums agree with ShardQueryStats exactly.
TEST(ShardedSearcherTest, StitchedTraceMatchesAggregateStats) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Dataset data = GenerateClustered(400, 4, 37, {});
  Dataset queries = data.TakeTail(4);
  Fixture f = MakeFixture(data, 4, ShardPlan::kRankPartition);

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    obs::QueryTracer tracer;
    ShardedSearchOptions options;
    options.tracer = &tracer;
    ASSERT_TRUE(f.sharded->KNearestNeighbors(queries[qi], 3, options).ok());
    const ShardQueryStats stats = f.sharded->last_query_stats();
    const std::vector<obs::SpanRecord> spans = tracer.Snapshot();

    // Exactly one root, and it is the sharded facade's span.
    size_t roots = 0;
    for (const obs::SpanRecord& span : spans) {
      if (span.parent == obs::kNoSpan) {
        ++roots;
        EXPECT_EQ(span.name, "sharded_knn");
      }
    }
    EXPECT_EQ(roots, 1u);

    // Every shard<i> span is accounted for: queried ones carry io_s
    // and hang under a wave<i> span with the per-shard `knn` subtree
    // beneath; pruned ones are zero-cost leaves under the root.
    size_t shard_spans = 0;
    size_t pruned_spans = 0;
    size_t knn_subtrees = 0;
    for (size_t i = 0; i < spans.size(); ++i) {
      const obs::SpanRecord& span = spans[i];
      if (span.name.rfind("shard", 0) == 0 &&
          span.name.rfind("sharded", 0) != 0) {
        ++shard_spans;
        bool pruned = false;
        for (const auto& [key, value] : span.attrs) {
          if (key == "pruned") pruned = value > 0;
        }
        if (pruned) {
          ++pruned_spans;
          EXPECT_EQ(spans[span.parent].name, "sharded_knn");
        } else {
          EXPECT_EQ(spans[span.parent].name.rfind("wave", 0), 0u);
        }
      }
      if (span.name == "knn") {
        ++knn_subtrees;
        ASSERT_NE(span.parent, obs::kNoSpan);
        EXPECT_EQ(spans[span.parent].name.rfind("shard", 0), 0u);
      }
    }
    EXPECT_EQ(shard_spans, stats.shards_queried + stats.shards_pruned);
    EXPECT_EQ(pruned_spans, stats.shards_pruned);
    EXPECT_EQ(knn_subtrees, stats.shards_queried);
    EXPECT_EQ(stats.shards_queried + stats.shards_pruned,
              stats.shards_total);

    // The stitched tree's io_s sums equal the aggregated stats
    // bit-exactly (same values folded in the same gather order).
    EXPECT_EQ(obs::AggregateSpansByPrefix(spans, "shard", "io_s"),
              stats.io_s_sum);
    EXPECT_EQ(obs::AggregateSpansByPrefix(spans, "shard", "pruned"),
              static_cast<double>(stats.shards_pruned));
    EXPECT_EQ(obs::AggregateSpans(spans, "page", nullptr),
              static_cast<double>(stats.totals.pages_decoded));
  }
}

/// Satellite (ISSUE 9): slow-log records of sharded queries carry the
/// per-shard predicted-vs-observed pairs, so calibration can localize
/// a mispredicting shard.
TEST(ShardedSearcherTest, SlowLogRecordCarriesPerShardSamples) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  Dataset data = GenerateUniform(150, 4, 43);
  Dataset queries = data.TakeTail(2);
  Fixture f = MakeFixture(data, 3);

  obs::SlowLogOptions log_options;
  log_options.quantile = 0.0;  // retain everything
  obs::SlowQueryLog log(log_options);
  ShardedSearchOptions options;
  options.slow_log = &log;
  ASSERT_TRUE(f.sharded->KNearestNeighbors(queries[0], 5, options).ok());
  const ShardQueryStats stats = f.sharded->last_query_stats();
  ASSERT_EQ(log.retained(), 1u);
  const obs::SlowQueryRecord record = log.Snapshot()[0];
  ASSERT_EQ(record.per_shard.size(), stats.shards_queried);
  double observed_sum = 0;
  for (const obs::ShardCostSample& sample : record.per_shard) {
    EXPECT_LT(sample.shard, f.sharded->num_shards());
    EXPECT_GT(sample.predicted.total(), 0.0);
    EXPECT_GT(sample.observed_io_s, 0.0);
    observed_sum += sample.observed_io_s;
  }
  EXPECT_EQ(observed_sum, stats.io_s_sum);
}

TEST(ShardedSearcherTest, RejectsMismatchedQueries) {
  Dataset data = GenerateUniform(80, 4, 31);
  Fixture f = MakeFixture(data, 2);
  const float q3[3] = {0.5f, 0.5f, 0.5f};
  EXPECT_TRUE(f.sharded->KNearestNeighbors(PointView(q3, 3), 5)
                  .status()
                  .IsInvalidArgument());
  const float q4[4] = {0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_TRUE(f.sharded->RangeSearch(PointView(q4, 4), -1.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      f.sharded->WindowQuery(Mbr::UnitCube(3)).status().IsInvalidArgument());
}

TEST(ShardedBulkLoaderTest, RefusesUseAfterFinishAndEmptyFinish) {
  MemoryStorage storage;
  {
    ShardedBulkLoader loader(storage, "none");
    // Finishing an empty load has no dimensionality to record.
    EXPECT_TRUE(loader.Finish().status().IsInvalidArgument());
  }
  ShardedBulkLoader loader(storage, "done");
  const float p[2] = {0.25f, 0.75f};
  ASSERT_TRUE(loader.Add(PointView(p, 2)).ok());
  ASSERT_TRUE(loader.Finish().ok());
  // iqlint: allow(typestate): exercising the runtime guards behind the protocol
  EXPECT_TRUE(loader.Add(PointView(p, 2)).IsInvalidArgument());
  EXPECT_TRUE(loader.Finish().status().IsInvalidArgument());
}

TEST(ShardedBulkLoaderTest, RejectsMixedDimensionalities) {
  MemoryStorage storage;
  ShardedBulkLoader loader(storage, "mixed");
  const float p2[2] = {0.1f, 0.2f};
  const float p3[3] = {0.1f, 0.2f, 0.3f};
  ASSERT_TRUE(loader.Add(PointView(p2, 2)).ok());
  EXPECT_TRUE(loader.Add(PointView(p3, 3)).IsInvalidArgument());
}

}  // namespace
}  // namespace iq
