#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "scan/seq_scan.h"

namespace iq {
namespace {

struct SearchCase {
  const char* name;
  size_t n;
  size_t dims;
  Metric metric;
  bool optimized_access;
  bool quantize;
};

class IqSearchCorrectness : public ::testing::TestWithParam<SearchCase> {};

/// Ground truth via brute force over the dataset.
std::vector<Neighbor> BruteForceKnn(const Dataset& data, PointView q,
                                    size_t k, Metric metric) {
  std::vector<Neighbor> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    all.push_back(Neighbor{static_cast<PointId>(i),
                           Distance(q, data[i], metric)});
  }
  std::sort(all.begin(), all.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance < b.distance;
            });
  all.resize(std::min(k, all.size()));
  return all;
}

TEST_P(IqSearchCorrectness, KnnMatchesBruteForce) {
  const SearchCase c = GetParam();
  const Dataset all = GenerateCadLike(c.n + 20, c.dims, 42);
  Dataset data = all;
  const Dataset queries = data.TakeTail(20);
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  IqTree::Options options;
  options.metric = c.metric;
  options.quantize = c.quantize;
  auto tree = IqTree::Build(data, storage, "t", disk, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  IqSearchOptions search;
  search.optimized_access = c.optimized_access;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (size_t k : {1u, 5u}) {
      const auto expected = BruteForceKnn(data, queries[qi], k, c.metric);
      auto got = (*tree)->KNearestNeighbors(queries[qi], k, search);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        // Distances must match exactly (ids may differ on ties).
        EXPECT_NEAR((*got)[i].distance, expected[i].distance, 1e-6)
            << c.name << " query " << qi << " k=" << k << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, IqSearchCorrectness,
    ::testing::Values(
        SearchCase{"l2_opt_quant", 3000, 8, Metric::kL2, true, true},
        SearchCase{"l2_std_quant", 3000, 8, Metric::kL2, false, true},
        SearchCase{"lmax_opt_quant", 3000, 8, Metric::kLMax, true, true},
        SearchCase{"l2_opt_noquant", 3000, 8, Metric::kL2, true, false},
        SearchCase{"l2_opt_highdim", 2000, 16, Metric::kL2, true, true},
        SearchCase{"l2_opt_lowdim", 3000, 2, Metric::kL2, true, true}),
    [](const ::testing::TestParamInfo<SearchCase>& param) {
      return param.param.name;
    });

TEST(IqRangeSearchTest, MatchesBruteForce) {
  Dataset data = GenerateWeatherLike(4000, 9, 13);
  const Dataset queries = data.TakeTail(10);
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  auto tree = IqTree::Build(data, storage, "t", disk, {});
  ASSERT_TRUE(tree.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (double radius : {0.0, 0.05, 0.2, 0.8}) {
      std::set<PointId> expected;
      for (size_t i = 0; i < data.size(); ++i) {
        if (Distance(queries[qi], data[i], Metric::kL2) <= radius) {
          expected.insert(static_cast<PointId>(i));
        }
      }
      auto got = (*tree)->RangeSearch(queries[qi], radius);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      std::set<PointId> got_ids;
      double prev = -1.0;
      for (const Neighbor& r : *got) {
        got_ids.insert(r.id);
        EXPECT_GE(r.distance, prev);  // ascending
        prev = r.distance;
        EXPECT_LE(r.distance, radius + 1e-9);
      }
      EXPECT_EQ(got_ids, expected) << "radius " << radius;
    }
  }
}

TEST(IqWindowQueryTest, MatchesBruteForce) {
  Dataset data = GenerateUniform(5000, 4, 21);
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  auto tree = IqTree::Build(data, storage, "t", disk, {});
  ASSERT_TRUE(tree.ok());
  const Mbr windows[] = {
      Mbr::FromBounds({0.1f, 0.1f, 0.1f, 0.1f}, {0.3f, 0.4f, 0.9f, 0.2f}),
      Mbr::FromBounds({0, 0, 0, 0}, {1, 1, 1, 1}),
      Mbr::FromBounds({0.9f, 0.9f, 0.9f, 0.9f}, {0.91f, 0.91f, 0.91f, 0.91f}),
  };
  for (const Mbr& window : windows) {
    std::set<PointId> expected;
    for (size_t i = 0; i < data.size(); ++i) {
      if (window.Contains(data[i])) expected.insert(static_cast<PointId>(i));
    }
    auto got = (*tree)->WindowQuery(window);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::set<PointId>(got->begin(), got->end()), expected);
  }
}

TEST(IqSearchIoTest, OptimizedAccessUsesFewerSeeks) {
  // The whole point of §2: batching neighboring pages trades seeks for
  // transfers. On a sizeable high-dimensional index the optimized
  // strategy must issue noticeably fewer seeks.
  Dataset data = GenerateUniform(30000, 16, 31);
  const Dataset queries = data.TakeTail(10);
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 4096});
  auto tree = IqTree::Build(data, storage, "t", disk, {});
  ASSERT_TRUE(tree.ok());

  auto run = [&](bool optimized) {
    disk.ResetStats();
    disk.InvalidateHead();
    IqSearchOptions search;
    search.optimized_access = optimized;
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE((*tree)->NearestNeighbor(queries[i], search).ok());
      disk.InvalidateHead();
    }
    return disk.stats();
  };
  const IoStats standard = run(false);
  const IoStats optimized = run(true);
  EXPECT_LT(optimized.seeks, standard.seeks);
  EXPECT_LT(optimized.io_time_s, standard.io_time_s);
}

TEST(IqSearchIoTest, QuantizationReadsFewerBlocksThanExactHighDim) {
  Dataset data = GenerateUniform(20000, 16, 33);
  const Dataset queries = data.TakeTail(10);
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 4096});
  IqTree::Options quantized;
  auto tree_q = IqTree::Build(data, storage, "q", disk, quantized);
  ASSERT_TRUE(tree_q.ok());
  IqTree::Options exact;
  exact.quantize = false;
  auto tree_e = IqTree::Build(data, storage, "e", disk, exact);
  ASSERT_TRUE(tree_e.ok());

  auto run = [&](IqTree& tree) {
    disk.ResetStats();
    disk.InvalidateHead();
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(tree.NearestNeighbor(queries[i]).ok());
      disk.InvalidateHead();
    }
    return disk.stats().io_time_s;
  };
  const double with_quant = run(**tree_q);
  const double without = run(**tree_e);
  EXPECT_LT(with_quant, without);
}

}  // namespace
}  // namespace iq
