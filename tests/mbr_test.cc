#include "geom/mbr.h"

#include <vector>

#include <gtest/gtest.h>

namespace iq {
namespace {

TEST(MbrTest, EmptyAbsorbsFirstPoint) {
  Mbr m = Mbr::Empty(3);
  EXPECT_TRUE(m.IsEmpty());
  const std::vector<float> p{0.1f, 0.5f, 0.9f};
  m.Extend(p);
  EXPECT_FALSE(m.IsEmpty());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m.lb(i), p[i]);
    EXPECT_EQ(m.ub(i), p[i]);
  }
}

TEST(MbrTest, OfComputesTightBox) {
  const float rows[] = {0.0f, 0.5f,  //
                        1.0f, 0.2f,  //
                        0.4f, 0.8f};
  Mbr m = Mbr::Of(rows, 3, 2);
  EXPECT_EQ(m.lb(0), 0.0f);
  EXPECT_EQ(m.ub(0), 1.0f);
  EXPECT_EQ(m.lb(1), 0.2f);
  EXPECT_EQ(m.ub(1), 0.8f);
}

TEST(MbrTest, ContainsAndIntersects) {
  Mbr a = Mbr::FromBounds({0, 0}, {1, 1});
  Mbr b = Mbr::FromBounds({0.5, 0.5}, {2, 2});
  Mbr c = Mbr::FromBounds({1.5, 1.5}, {2, 2});
  const std::vector<float> inside{0.5f, 0.5f};
  const std::vector<float> outside{1.5f, 0.5f};
  EXPECT_TRUE(a.Contains(inside));
  EXPECT_FALSE(a.Contains(outside));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching boxes intersect (closed intervals).
  Mbr d = Mbr::FromBounds({1.0, 0.0}, {2.0, 1.0});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(MbrTest, VolumeAndMargin) {
  Mbr m = Mbr::FromBounds({0, 0, 0}, {2, 3, 4});
  EXPECT_DOUBLE_EQ(m.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 9.0);
  Mbr flat = Mbr::FromBounds({0, 0}, {1, 0});
  EXPECT_DOUBLE_EQ(flat.Volume(), 0.0);
}

TEST(MbrTest, LongestDimension) {
  Mbr m = Mbr::FromBounds({0, 0, 0}, {1, 5, 2});
  EXPECT_EQ(m.LongestDimension(), 1u);
}

TEST(MbrTest, IntersectionVolume) {
  Mbr a = Mbr::FromBounds({0, 0}, {2, 2});
  Mbr b = Mbr::FromBounds({1, 1}, {3, 3});
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 1.0);
  Mbr c = Mbr::FromBounds({5, 5}, {6, 6});
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(c), 0.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(b.IntersectionVolume(a), a.IntersectionVolume(b));
}

TEST(MbrTest, ExtendWithBox) {
  Mbr a = Mbr::FromBounds({0, 0}, {1, 1});
  a.Extend(Mbr::FromBounds({2, -1}, {3, 0.5}));
  EXPECT_EQ(a.lb(0), 0.0f);
  EXPECT_EQ(a.ub(0), 3.0f);
  EXPECT_EQ(a.lb(1), -1.0f);
  EXPECT_EQ(a.ub(1), 1.0f);
}

TEST(MbrTest, MeanExtentIsGeometricMean) {
  Mbr m = Mbr::FromBounds({0, 0}, {2, 8});
  EXPECT_NEAR(m.MeanExtent(), 4.0, 1e-9);
  Mbr flat = Mbr::FromBounds({0, 0}, {1, 0});
  EXPECT_EQ(flat.MeanExtent(), 0.0);
}

TEST(MbrTest, UnitCube) {
  Mbr u = Mbr::UnitCube(4);
  EXPECT_DOUBLE_EQ(u.Volume(), 1.0);
  EXPECT_EQ(u.dims(), 4u);
}

}  // namespace
}  // namespace iq
