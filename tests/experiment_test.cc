#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

TEST(ExperimentTest, AllMethodsProduceTimes) {
  Dataset data = GenerateUniform(3010, 8, 1);
  const Dataset queries = data.TakeTail(10);
  Experiment experiment(data, queries, DiskParameters{0.010, 0.002, 4096});
  for (auto result : {experiment.RunIqTree(), experiment.RunXTree(),
                      experiment.RunVaFile(4), experiment.RunSeqScan()}) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->avg_query_time_s, 0.0);
    EXPECT_GT(result->blocks_per_query, 0.0);
    EXPECT_GT(result->structure_size, 0u);
  }
}

TEST(ExperimentTest, ScanCostMatchesClosedForm) {
  Dataset data = GenerateUniform(5005, 16, 2);
  const Dataset queries = data.TakeTail(5);
  const DiskParameters disk{0.010, 0.002, 8192};
  Experiment experiment(data, queries, disk);
  auto result = experiment.RunSeqScan();
  ASSERT_TRUE(result.ok());
  const uint64_t blocks = (24 + 5000ull * 16 * 4 + 8191) / 8192;
  EXPECT_NEAR(result->avg_query_time_s,
              disk.seek_time_s + blocks * disk.xfer_time_s, 1e-9);
}

TEST(ExperimentTest, BestBitsPicksAWinner) {
  Dataset data = GenerateUniform(2005, 8, 3);
  const Dataset queries = data.TakeTail(5);
  Experiment experiment(data, queries, DiskParameters{0.010, 0.002, 4096});
  unsigned best_bits = 0;
  auto best = experiment.RunVaFileBestBits(2, 6, &best_bits);
  ASSERT_TRUE(best.ok());
  EXPECT_GE(best_bits, 2u);
  EXPECT_LE(best_bits, 6u);
  // The winner is no slower than two arbitrary settings.
  for (unsigned bits : {2u, 6u}) {
    auto other = experiment.RunVaFile(bits);
    ASSERT_TRUE(other.ok());
    EXPECT_LE(best->avg_query_time_s, other->avg_query_time_s + 1e-12);
  }
}

TEST(ExperimentTest, HighDimUniformOrdering) {
  // The paper's Fig. 8 shape at d = 16: the compressing methods
  // (IQ-tree, VA-file) are comparable and far ahead of the scan, while
  // the X-tree degenerates below the scan. (The paper's 3x IQ-over-VA
  // factor on *uniform* data does not reproduce at this reduced scale —
  // see EXPERIMENTS.md; on the clustered workloads the IQ-tree's lead
  // does, see ClusteredOrdering below.)
  Dataset data = GenerateUniform(20020, 16, 4);
  const Dataset queries = data.TakeTail(20);
  Experiment experiment(data, queries, DiskParameters{0.010, 0.002, 8192});
  auto iq = experiment.RunIqTree();
  auto x = experiment.RunXTree();
  auto va = experiment.RunVaFileBestBits(4, 6);
  auto scan = experiment.RunSeqScan();
  ASSERT_TRUE(iq.ok() && x.ok() && va.ok() && scan.ok());
  EXPECT_LT(iq->avg_query_time_s, 2.5 * va->avg_query_time_s);
  EXPECT_LT(iq->avg_query_time_s, 0.7 * scan->avg_query_time_s);
  EXPECT_LT(va->avg_query_time_s, scan->avg_query_time_s);
  EXPECT_GT(x->avg_query_time_s, scan->avg_query_time_s);
}

TEST(ExperimentTest, ClusteredOrdering) {
  // Fig. 10/12 shape: on clustered data the IQ-tree beats both the
  // VA-file and the X-tree, and the X-tree beats the scan.
  Dataset data = GenerateCadLike(20020, 16, 5);
  const Dataset queries = data.TakeTail(20);
  Experiment experiment(data, queries, DiskParameters{0.010, 0.002, 8192});
  auto iq = experiment.RunIqTree();
  auto x = experiment.RunXTree();
  auto va = experiment.RunVaFileBestBits(4, 8);
  auto scan = experiment.RunSeqScan();
  ASSERT_TRUE(iq.ok() && x.ok() && va.ok() && scan.ok());
  EXPECT_LT(iq->avg_query_time_s, va->avg_query_time_s);
  EXPECT_LT(iq->avg_query_time_s, x->avg_query_time_s);
  EXPECT_LT(x->avg_query_time_s, scan->avg_query_time_s);
}

TEST(ExperimentTest, KnnSupported) {
  Dataset data = GenerateUniform(2010, 6, 5);
  const Dataset queries = data.TakeTail(10);
  Experiment experiment(data, queries, DiskParameters{0.010, 0.002, 4096});
  experiment.set_k(5);
  auto iq = experiment.RunIqTree();
  ASSERT_TRUE(iq.ok());
  EXPECT_GT(iq->avg_query_time_s, 0.0);
}

TEST(ExperimentTest, WindowHarnessesProduceTimes) {
  Dataset data = GenerateUniform(3010, 8, 6);
  const Dataset queries = data.TakeTail(10);
  Experiment experiment(data, queries, DiskParameters{0.010, 0.002, 4096});
  for (auto result :
       {experiment.RunIqTreeWindows(0.2), experiment.RunXTreeWindows(0.2),
        experiment.RunPyramidWindows(0.2),
        experiment.RunVaFileWindows(0.2, 5)}) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->avg_query_time_s, 0.0);
  }
  auto pyramid_nn = experiment.RunPyramid();
  ASSERT_TRUE(pyramid_nn.ok());
  EXPECT_GT(pyramid_nn->avg_query_time_s, 0.0);
  auto rstar = experiment.RunRStarTree();
  ASSERT_TRUE(rstar.ok());
  EXPECT_GT(rstar->avg_query_time_s, 0.0);
}

}  // namespace
}  // namespace iq
