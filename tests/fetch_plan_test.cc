#include "sched/fetch_plan.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace iq {
namespace {

DiskParameters TestDisk() {
  // v = t_seek / t_xfer = 5 blocks.
  return DiskParameters{0.010, 0.002, 8192};
}

TEST(FetchPlanTest, EmptyAndSingle) {
  EXPECT_TRUE(PlanKnownSetFetch({}, TestDisk()).empty());
  const std::vector<uint64_t> one{7};
  const auto runs = PlanKnownSetFetch(one, TestDisk());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (FetchRun{7, 1}));
}

TEST(FetchPlanTest, AdjacentBlocksMerge) {
  const std::vector<uint64_t> blocks{3, 4, 5};
  const auto runs = PlanKnownSetFetch(blocks, TestDisk());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (FetchRun{3, 3}));
}

TEST(FetchPlanTest, SmallGapOverRead) {
  // Gap of 4 blocks: 4 * t_xfer = 8ms < 10ms seek -> over-read.
  const std::vector<uint64_t> blocks{0, 5};
  const auto runs = PlanKnownSetFetch(blocks, TestDisk());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (FetchRun{0, 6}));
}

TEST(FetchPlanTest, LargeGapSeeks) {
  // Gap of 5 blocks: 5 * t_xfer = 10ms == t_seek -> seek (strict <).
  const std::vector<uint64_t> blocks{0, 6};
  const auto runs = PlanKnownSetFetch(blocks, TestDisk());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (FetchRun{0, 1}));
  EXPECT_EQ(runs[1], (FetchRun{6, 1}));
}

TEST(FetchPlanTest, MixedRuns) {
  const std::vector<uint64_t> blocks{0, 2, 3, 100, 101, 200};
  const auto runs = PlanKnownSetFetch(blocks, TestDisk());
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (FetchRun{0, 4}));
  EXPECT_EQ(runs[1], (FetchRun{100, 2}));
  EXPECT_EQ(runs[2], (FetchRun{200, 1}));
}

TEST(FetchPlanTest, BufferLimitSplitsRuns) {
  // 8 adjacent blocks with a 3-block buffer: ceil(8/3) = 3 runs.
  const std::vector<uint64_t> blocks{0, 1, 2, 3, 4, 5, 6, 7};
  const auto runs = PlanKnownSetFetch(blocks, TestDisk(), 3);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (FetchRun{0, 3}));
  EXPECT_EQ(runs[1], (FetchRun{3, 3}));
  EXPECT_EQ(runs[2], (FetchRun{6, 2}));
  for (const FetchRun& run : runs) EXPECT_LE(run.count, 3u);
}

TEST(FetchPlanTest, BufferLimitPreventsGapBridging) {
  // The gap would be over-read without the limit, but the merged run
  // (6 blocks) exceeds a 4-block buffer.
  const std::vector<uint64_t> blocks{0, 5};
  EXPECT_EQ(PlanKnownSetFetch(blocks, TestDisk(), 0).size(), 1u);
  const auto limited = PlanKnownSetFetch(blocks, TestDisk(), 4);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[0], (FetchRun{0, 1}));
  EXPECT_EQ(limited[1], (FetchRun{5, 1}));
}

TEST(FetchPlanTest, UnboundedEqualsLargeBuffer) {
  Rng rng(8);
  const DiskParameters disk = TestDisk();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint64_t> blocks;
    uint64_t pos = 0;
    const size_t n = 1 + rng.Index(20);
    for (size_t i = 0; i < n; ++i) {
      blocks.push_back(pos);
      pos += 1 + rng.Index(8);
    }
    EXPECT_EQ(PlanKnownSetFetch(blocks, disk, 0),
              PlanKnownSetFetch(blocks, disk, 1 << 20));
  }
}

TEST(FetchPlanTest, PlanCost) {
  const std::vector<FetchRun> runs{{0, 4}, {100, 2}};
  const DiskParameters disk = TestDisk();
  EXPECT_NEAR(PlanCost(runs, disk),
              2 * disk.seek_time_s + 6 * disk.xfer_time_s, 1e-12);
}

/// Optimality property (Seeger et al. [19]): the greedy plan's cost
/// never exceeds the cost of any other contiguous-run partition of the
/// block list. We verify against brute-force enumeration of all ways to
/// cut the sorted block list into runs.
TEST(FetchPlanTest, OptimalAgainstBruteForce) {
  Rng rng(5);
  const DiskParameters disk = TestDisk();
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.Index(10);
    std::vector<uint64_t> blocks;
    uint64_t pos = rng.Index(4);
    for (size_t i = 0; i < n; ++i) {
      blocks.push_back(pos);
      pos += 1 + rng.Index(12);
    }
    const auto greedy = PlanKnownSetFetch(blocks, disk);
    const double greedy_cost = PlanCost(greedy, disk);
    // Enumerate all 2^(n-1) cut patterns.
    double best = 1e300;
    const size_t cuts = n == 0 ? 0 : (size_t{1} << (n - 1));
    for (size_t mask = 0; mask < cuts; ++mask) {
      double cost = 0.0;
      size_t start = 0;
      for (size_t i = 0; i + 1 <= n; ++i) {
        const bool cut_after = i + 1 == n || (mask >> i) & 1;
        if (cut_after) {
          const uint64_t span = blocks[i] - blocks[start] + 1;
          cost += disk.seek_time_s +
                  disk.xfer_time_s * static_cast<double>(span);
          start = i + 1;
        }
      }
      best = std::min(best, cost);
    }
    EXPECT_NEAR(greedy_cost, best, 1e-9)
        << "trial " << trial << " n=" << n;
  }
}

}  // namespace
}  // namespace iq
