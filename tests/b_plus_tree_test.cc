#include "btree/b_plus_tree.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace iq {
namespace {

class BPlusTreeTest : public ::testing::Test {
 protected:
  BPlusTreeTest() : disk_(DiskParameters{0.010, 0.002, 1024}) {}

  /// Builds a tree over `pairs` (sorted by key) with uint32 payloads.
  std::unique_ptr<BPlusTree> Make(
      const std::vector<std::pair<double, uint32_t>>& pairs,
      const std::string& name = "bt") {
    std::vector<double> keys;
    std::vector<uint8_t> payloads;
    for (const auto& [key, value] : pairs) {
      keys.push_back(key);
      const uint8_t* v = reinterpret_cast<const uint8_t*>(&value);
      payloads.insert(payloads.end(), v, v + sizeof(value));
    }
    BPlusTree::Options options;
    options.payload_bytes = sizeof(uint32_t);
    auto tree = BPlusTree::Build(keys, payloads, storage_, name, disk_,
                                 options);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return std::move(tree).value();
  }

  /// Scans [lo, hi] into (key, value) pairs.
  std::vector<std::pair<double, uint32_t>> Collect(const BPlusTree& tree,
                                                   double lo, double hi) {
    std::vector<std::pair<double, uint32_t>> out;
    Status s = tree.Scan(lo, hi, [&](double key, const uint8_t* payload) {
      uint32_t value;
      std::memcpy(&value, payload, sizeof(value));
      out.emplace_back(key, value);
      return Status::OK();
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(BPlusTreeTest, BulkBuildAndFullScan) {
  std::vector<std::pair<double, uint32_t>> pairs;
  for (uint32_t i = 0; i < 5000; ++i) pairs.emplace_back(i * 0.001, i);
  auto tree = Make(pairs);
  EXPECT_EQ(tree->size(), 5000u);
  const auto got = Collect(*tree, -1.0, 10.0);
  ASSERT_EQ(got.size(), 5000u);
  for (uint32_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(got[i].second, i);
  }
  const auto stats = tree->ComputeStats();
  EXPECT_GT(stats.num_leaves, 1u);
  EXPECT_GE(stats.height, 2u);
}

TEST_F(BPlusTreeTest, IntervalScanBoundsInclusive) {
  std::vector<std::pair<double, uint32_t>> pairs;
  for (uint32_t i = 0; i < 100; ++i) pairs.emplace_back(i, i);
  auto tree = Make(pairs);
  const auto got = Collect(*tree, 10.0, 20.0);
  ASSERT_EQ(got.size(), 11u);
  EXPECT_EQ(got.front().second, 10u);
  EXPECT_EQ(got.back().second, 20u);
  EXPECT_TRUE(Collect(*tree, 200.0, 300.0).empty());
  EXPECT_TRUE(Collect(*tree, 20.0, 10.0).empty());
}

TEST_F(BPlusTreeTest, DuplicateKeysAllFound) {
  std::vector<std::pair<double, uint32_t>> pairs;
  for (uint32_t i = 0; i < 2000; ++i) {
    pairs.emplace_back(static_cast<double>(i / 100), i);  // 100 dups/key
  }
  auto tree = Make(pairs);
  const auto got = Collect(*tree, 7.0, 7.0);
  EXPECT_EQ(got.size(), 100u);
  for (const auto& [key, value] : got) {
    EXPECT_EQ(key, 7.0);
    EXPECT_EQ(value / 100, 7u);
  }
}

TEST_F(BPlusTreeTest, RandomInsertsMatchReference) {
  auto tree = Make({});
  Rng rng(5);
  std::multimap<double, uint32_t> reference;
  for (uint32_t i = 0; i < 3000; ++i) {
    const double key = rng.Uniform(0, 10);
    uint8_t payload[sizeof(uint32_t)];
    std::memcpy(payload, &i, sizeof(i));
    ASSERT_TRUE(tree->Insert(key, payload).ok());
    reference.emplace(key, i);
  }
  EXPECT_EQ(tree->size(), 3000u);
  // Several probe intervals.
  for (double lo : {0.0, 2.5, 9.9}) {
    const double hi = lo + 1.0;
    const auto got = Collect(*tree, lo, hi);
    size_t expected = 0;
    for (const auto& [key, value] : reference) {
      if (key >= lo && key <= hi) ++expected;
    }
    EXPECT_EQ(got.size(), expected) << "lo=" << lo;
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_GE(got[i].first, got[i - 1].first);  // key order
    }
  }
}

TEST_F(BPlusTreeTest, MixedBulkAndInserts) {
  std::vector<std::pair<double, uint32_t>> pairs;
  for (uint32_t i = 0; i < 1000; ++i) pairs.emplace_back(2.0 * i, i);
  auto tree = Make(pairs);
  for (uint32_t i = 0; i < 1000; ++i) {
    const double key = 2.0 * i + 1.0;
    const uint32_t value = 100000 + i;
    uint8_t payload[sizeof(uint32_t)];
    std::memcpy(payload, &value, sizeof(value));
    ASSERT_TRUE(tree->Insert(key, payload).ok());
  }
  const auto got = Collect(*tree, -1.0, 1e9);
  ASSERT_EQ(got.size(), 2000u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GT(got[i].first, got[i - 1].first);
  }
}

TEST_F(BPlusTreeTest, FlushOpenRoundTrip) {
  std::vector<std::pair<double, uint32_t>> pairs;
  for (uint32_t i = 0; i < 500; ++i) pairs.emplace_back(i * 0.5, i);
  {
    auto tree = Make(pairs);
    uint8_t payload[sizeof(uint32_t)];
    const uint32_t value = 999999;
    std::memcpy(payload, &value, sizeof(value));
    ASSERT_TRUE(tree->Insert(123.75, payload).ok());
    ASSERT_TRUE(tree->Flush().ok());
  }
  auto reopened = BPlusTree::Open(storage_, "bt", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 501u);
  const auto got = Collect(**reopened, 123.75, 123.75);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second, 999999u);
}

TEST_F(BPlusTreeTest, ScanChargesDescentAndLeaves) {
  std::vector<std::pair<double, uint32_t>> pairs;
  for (uint32_t i = 0; i < 20000; ++i) pairs.emplace_back(i, i);
  auto tree = Make(pairs);
  disk_.ResetStats();
  disk_.InvalidateHead();
  (void)Collect(*tree, 5000.0, 5002.0);
  // A short interval touches the descent + one or two leaves, not the
  // whole file.
  EXPECT_LE(disk_.stats().blocks_read, 8u);
  EXPECT_GE(disk_.stats().blocks_read, 2u);
  // A full scan reads all leaves.
  disk_.ResetStats();
  (void)Collect(*tree, -1.0, 1e9);
  EXPECT_GE(disk_.stats().blocks_read, tree->ComputeStats().num_leaves);
}

TEST_F(BPlusTreeTest, VisitorErrorAborts) {
  std::vector<std::pair<double, uint32_t>> pairs;
  for (uint32_t i = 0; i < 100; ++i) pairs.emplace_back(i, i);
  auto tree = Make(pairs);
  int visits = 0;
  Status s = tree->Scan(0, 99, [&](double, const uint8_t*) {
    if (++visits == 5) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(visits, 5);
}

TEST_F(BPlusTreeTest, BuildRejectsBadInputs) {
  BPlusTree::Options options;
  options.payload_bytes = 4;
  std::vector<double> unsorted{2.0, 1.0};
  std::vector<uint8_t> payloads(8, 0);
  EXPECT_TRUE(BPlusTree::Build(unsorted, payloads, storage_, "x", disk_,
                               options)
                  .status()
                  .IsInvalidArgument());
  options.payload_bytes = 0;
  EXPECT_TRUE(BPlusTree::Build({}, {}, storage_, "x", disk_, options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace iq
