#include "scan/seq_scan.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

class SeqScanTest : public ::testing::Test {
 protected:
  SeqScanTest() : disk_(DiskParameters{0.010, 0.002, 4096}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(SeqScanTest, NearestNeighborIsExact) {
  Dataset data = GenerateUniform(3000, 6, 1);
  const Dataset queries = data.TakeTail(10);
  auto scan = SeqScan::Build(data, storage_, "s", disk_, {});
  ASSERT_TRUE(scan.ok());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    double best = 1e300;
    PointId best_id = kInvalidPointId;
    for (size_t i = 0; i < data.size(); ++i) {
      const double dist = Distance(queries[qi], data[i], Metric::kL2);
      if (dist < best) {
        best = dist;
        best_id = static_cast<PointId>(i);
      }
    }
    auto nn = (*scan)->NearestNeighbor(queries[qi]);
    ASSERT_TRUE(nn.ok());
    EXPECT_EQ(nn->id, best_id);
    EXPECT_NEAR(nn->distance, best, 1e-9);
  }
}

TEST_F(SeqScanTest, KnnSortedAscending) {
  Dataset data = GenerateUniform(500, 4, 3);
  auto scan = SeqScan::Build(data, storage_, "s", disk_, {});
  ASSERT_TRUE(scan.ok());
  const std::vector<float> q(4, 0.5f);
  auto got = (*scan)->KNearestNeighbors(q, 20);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), 20u);
  for (size_t i = 1; i < got->size(); ++i) {
    EXPECT_GE((*got)[i].distance, (*got)[i - 1].distance);
  }
}

TEST_F(SeqScanTest, CostIsOneSequentialPass) {
  Dataset data = GenerateUniform(10000, 16, 5);
  auto scan = SeqScan::Build(data, storage_, "s", disk_, {});
  ASSERT_TRUE(scan.ok());
  disk_.ResetStats();
  disk_.InvalidateHead();
  const std::vector<float> q(16, 0.5f);
  ASSERT_TRUE((*scan)->NearestNeighbor(q).ok());
  EXPECT_EQ(disk_.stats().seeks, 1u);
  const uint64_t expected_blocks =
      (24 + 10000ull * 16 * 4 + 4095) / 4096;
  EXPECT_EQ(disk_.stats().blocks_read, expected_blocks);
}

TEST_F(SeqScanTest, OpenRoundTripAndInsert) {
  Dataset data = GenerateUniform(100, 3, 7);
  {
    auto scan = SeqScan::Build(data, storage_, "s", disk_, {});
    ASSERT_TRUE(scan.ok());
    ASSERT_TRUE((*scan)->Insert(std::vector<float>{9, 9, 9}).ok());
    ASSERT_TRUE((*scan)->Flush().ok());
  }
  auto reopened = SeqScan::Open(storage_, "s", disk_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 101u);
  auto nn = (*reopened)->NearestNeighbor(std::vector<float>{9, 9, 9});
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 100u);
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(SeqScanTest, RangeSearchMatchesBruteForce) {
  Dataset data = GenerateUniform(1000, 2, 9);
  auto scan = SeqScan::Build(data, storage_, "s", disk_, {});
  ASSERT_TRUE(scan.ok());
  const std::vector<float> q{0.5f, 0.5f};
  auto got = (*scan)->RangeSearch(q, 0.1);
  ASSERT_TRUE(got.ok());
  size_t expected = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (Distance(q, data[i], Metric::kL2) <= 0.1) ++expected;
  }
  EXPECT_EQ(got->size(), expected);
}

TEST_F(SeqScanTest, EmptyAndEdgeCases) {
  auto scan = SeqScan::Build(Dataset(4), storage_, "s", disk_, {});
  ASSERT_TRUE(scan.ok());
  const std::vector<float> q(4, 0.0f);
  EXPECT_TRUE((*scan)->NearestNeighbor(q).status().IsNotFound());
  auto knn = (*scan)->KNearestNeighbors(q, 0);
  ASSERT_TRUE(knn.ok());
  EXPECT_TRUE(knn->empty());
}

}  // namespace
}  // namespace iq
