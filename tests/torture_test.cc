// Randomized torture test: a long interleaved stream of inserts,
// removals, reoptimizations and all four query types against a
// brute-force reference model, with structural validation along the
// way. Catches interaction bugs no single-feature test sees.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/iq_tree.h"
#include "data/generators.h"

namespace iq {
namespace {

class TortureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TortureTest, RandomOperationStream) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t dims = 2 + rng.Index(8);
  const Metric metric = rng.Uniform() < 0.5 ? Metric::kL2 : Metric::kLMax;

  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 1024});

  // Start from a moderate bulk load.
  const Dataset initial = GenerateCadLike(600, dims, seed);
  IqTree::Options options;
  options.metric = metric;
  auto built = IqTree::Build(initial, storage, "t", disk, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  IqTree& tree = **built;

  // Reference model: id -> point.
  std::map<PointId, Point> reference;
  for (size_t i = 0; i < initial.size(); ++i) {
    reference[static_cast<PointId>(i)] =
        Point(initial[i].begin(), initial[i].end());
  }
  PointId next_id = static_cast<PointId>(initial.size());

  auto random_point = [&] {
    Point p(dims);
    for (size_t i = 0; i < dims; ++i) {
      p[i] = static_cast<float>(rng.Uniform());
    }
    return p;
  };

  for (int step = 0; step < 300; ++step) {
    const double roll = rng.Uniform();
    if (roll < 0.35) {
      // Insert.
      const Point p = random_point();
      ASSERT_TRUE(tree.Insert(next_id, p).ok()) << "step " << step;
      reference[next_id] = p;
      ++next_id;
    } else if (roll < 0.55 && !reference.empty()) {
      // Remove a random existing point.
      auto it = reference.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.Index(reference.size())));
      ASSERT_TRUE(tree.Remove(it->first, it->second).ok())
          << "step " << step << " id " << it->first;
      reference.erase(it);
    } else if (roll < 0.58) {
      ASSERT_TRUE(tree.Reoptimize().ok()) << "step " << step;
    } else if (roll < 0.75) {
      // k-NN against brute force.
      const Point q = random_point();
      const size_t k = 1 + rng.Index(5);
      std::vector<double> expected;
      for (const auto& [id, p] : reference) {
        expected.push_back(Distance(q, p, metric));
      }
      std::sort(expected.begin(), expected.end());
      expected.resize(std::min(k, expected.size()));
      auto got = tree.KNearestNeighbors(q, k);
      ASSERT_TRUE(got.ok()) << "step " << step;
      ASSERT_EQ(got->size(), expected.size()) << "step " << step;
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR((*got)[i].distance, expected[i], 1e-6)
            << "step " << step << " rank " << i;
      }
    } else if (roll < 0.88) {
      // Range query against brute force.
      const Point q = random_point();
      const double radius = rng.Uniform(0.0, 0.5);
      std::set<PointId> expected;
      for (const auto& [id, p] : reference) {
        if (Distance(q, p, metric) <= radius) expected.insert(id);
      }
      auto got = tree.RangeSearch(q, radius);
      ASSERT_TRUE(got.ok()) << "step " << step;
      std::set<PointId> got_ids;
      for (const Neighbor& r : *got) got_ids.insert(r.id);
      ASSERT_EQ(got_ids, expected) << "step " << step;
    } else {
      // Window query against brute force.
      std::vector<float> lb(dims), ub(dims);
      for (size_t i = 0; i < dims; ++i) {
        const double a = rng.Uniform(), b = rng.Uniform();
        lb[i] = static_cast<float>(std::min(a, b));
        ub[i] = static_cast<float>(std::max(a, b));
      }
      const Mbr window = Mbr::FromBounds(lb, ub);
      std::set<PointId> expected;
      for (const auto& [id, p] : reference) {
        if (window.Contains(p)) expected.insert(id);
      }
      auto got = tree.WindowQuery(window);
      ASSERT_TRUE(got.ok()) << "step " << step;
      ASSERT_EQ(std::set<PointId>(got->begin(), got->end()), expected)
          << "step " << step;
    }
    if (step % 50 == 49) {
      Status s = tree.Validate();
      ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
      EXPECT_EQ(tree.size(), reference.size()) << "step " << step;
    }
  }
  // Final: persist, reopen, everything still matches.
  ASSERT_TRUE(tree.Flush().ok());
  auto reopened = IqTree::Open(storage, "t", disk);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), reference.size());
  EXPECT_TRUE((*reopened)->Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace iq
