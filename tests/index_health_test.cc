// Index-health inspector: exact statistics on a hand-built directory,
// sane ranges on a real bulk-loaded tree, and the JSON export schema.

#include "analysis/index_health.h"

#include <algorithm>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "io/storage.h"

namespace iq {
namespace {

DirEntry MakeEntry(float lo, float hi, uint32_t count, uint32_t g,
                   uint64_t exact_len) {
  DirEntry entry;
  entry.mbr = Mbr::FromBounds({lo, lo}, {hi, hi});
  entry.count = count;
  entry.quant_bits = g;
  entry.exact = Extent{0, exact_len};
  return entry;
}

TEST(IndexHealthTest, ExactStatisticsOnSyntheticDirectory) {
  IndexMeta meta;
  meta.dims = 2;
  meta.total_points = 48;
  meta.block_size = 2048;
  // Two overlapping unit-ish boxes, one g=2 page and one exact page.
  std::vector<DirEntry> dir;
  dir.push_back(MakeEntry(0.0f, 1.0f, 32, 2, 320));
  dir.push_back(MakeEntry(0.5f, 1.5f, 16, 32, 0));
  const IndexHealth h = ComputeIndexHealth(meta, dir);
  EXPECT_EQ(h.num_pages, 2u);
  EXPECT_EQ(h.pages_per_level[1], 1u);  // g=2
  EXPECT_EQ(h.pages_per_level[5], 1u);  // g=32
  const double occ0 = 32.0 / QuantPageCapacity(2, 2, 2048);
  const double occ1 = 16.0 / QuantPageCapacity(2, 32, 2048);
  EXPECT_DOUBLE_EQ(h.occupancy_min, std::min(occ0, occ1));
  EXPECT_DOUBLE_EQ(h.occupancy_max, std::max(occ0, occ1));
  EXPECT_DOUBLE_EQ(h.occupancy_mean, (occ0 + occ1) / 2.0);
  EXPECT_DOUBLE_EQ(h.mbr_volume_mean, 1.0);  // both boxes are 1x1
  EXPECT_DOUBLE_EQ(h.mbr_volume_max, 1.0);
  EXPECT_EQ(h.mbr_overlap_pairs, 1u);
  EXPECT_DOUBLE_EQ(h.mbr_overlap_mean, 0.25);  // 0.5 x 0.5 intersection
  EXPECT_DOUBLE_EQ(h.mbr_overlap_fraction, 1.0);
  EXPECT_DOUBLE_EQ(h.level3_indirection_ratio, 0.5);  // one of two pages
  EXPECT_EQ(h.exact_bytes, 320u);  // g=32 pages hold no third-level data
}

TEST(IndexHealthTest, EmptyDirectoryIsAllZeros) {
  const IndexHealth h = ComputeIndexHealth(IndexMeta{}, {});
  EXPECT_EQ(h.num_pages, 0u);
  EXPECT_DOUBLE_EQ(h.occupancy_mean, 0.0);
  EXPECT_EQ(h.mbr_overlap_pairs, 0u);
  // The JSON export must stay well-formed (no 1e300 min sentinel).
  const std::string json = IndexHealthToJson(h);
  EXPECT_NE(json.find("\"occupancy_min\":0"), std::string::npos);
}

TEST(IndexHealthTest, BuiltTreeReportsSaneRanges) {
  Dataset data = GenerateCadLike(3000, 10, 17);
  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});
  auto tree = IqTree::Build(data, storage, "t", disk, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  const IndexHealth h =
      ComputeIndexHealth((*tree)->meta(), (*tree)->directory());
  EXPECT_EQ(h.num_pages, (*tree)->num_pages());
  EXPECT_EQ(h.total_points, (*tree)->size());
  uint64_t level_sum = 0;
  for (uint64_t count : h.pages_per_level) level_sum += count;
  EXPECT_EQ(level_sum, h.num_pages);
  EXPECT_GT(h.occupancy_mean, 0.0);
  EXPECT_LE(h.occupancy_max, 1.0);  // capacity is a hard page limit
  EXPECT_GE(h.occupancy_min, 0.0);
  EXPECT_GE(h.level3_indirection_ratio, 0.0);
  EXPECT_LE(h.level3_indirection_ratio, 1.0);
  EXPECT_GT(h.mbr_volume_mean, 0.0);
  EXPECT_EQ(h.mbr_overlap_pairs,
            h.num_pages * (h.num_pages - 1) / 2);  // under the sample cap
}

TEST(IndexHealthTest, JsonExportHasSchemaKeys) {
  IndexMeta meta;
  meta.dims = 2;
  meta.block_size = 2048;
  std::vector<DirEntry> dir;
  dir.push_back(MakeEntry(0.0f, 1.0f, 8, 4, 96));
  const std::string json = IndexHealthToJson(ComputeIndexHealth(meta, dir));
  for (const char* key :
       {"\"dims\"", "\"total_points\"", "\"num_pages\"", "\"block_size\"",
        "\"pages_per_level\"", "\"g1\"", "\"g32\"", "\"occupancy_mean\"",
        "\"occupancy_min\"", "\"occupancy_max\"", "\"mbr_volume_mean\"",
        "\"mbr_volume_max\"", "\"mbr_overlap_mean\"", "\"mbr_overlap_pairs\"",
        "\"mbr_overlap_fraction\"", "\"level3_indirection_ratio\"",
        "\"exact_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace iq
