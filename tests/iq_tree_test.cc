#include "core/iq_tree.h"

#include <numeric>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace iq {
namespace {

class IqTreeTest : public ::testing::Test {
 protected:
  IqTreeTest() : disk_(DiskParameters{0.010, 0.002, 4096}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(IqTreeTest, BuildProducesConsistentStructure) {
  const Dataset data = GenerateUniform(5000, 8, 1);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ((*tree)->dims(), 8u);
  EXPECT_EQ((*tree)->size(), 5000u);
  EXPECT_GT((*tree)->num_pages(), 0u);
  // Directory covers all points.
  uint64_t total = 0;
  for (const DirEntry& entry : (*tree)->directory()) {
    EXPECT_TRUE(IsQuantLevel(entry.quant_bits));
    EXPECT_GT(entry.count, 0u);
    total += entry.count;
  }
  EXPECT_EQ(total, 5000u);
  const auto& stats = (*tree)->build_stats();
  EXPECT_EQ(stats.num_pages, (*tree)->num_pages());
  EXPECT_GT(stats.expected_query_cost_s, 0.0);
  EXPECT_GT(stats.fractal_dimension, 0.0);
}

TEST_F(IqTreeTest, OpenRoundTrip) {
  const Dataset data = GenerateCadLike(2000, 6, 2);
  {
    auto tree = IqTree::Build(data, storage_, "t", disk_, {});
    ASSERT_TRUE(tree.ok());
  }
  auto reopened = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->size(), 2000u);
  EXPECT_EQ((*reopened)->dims(), 6u);
  // Query works after reopen.
  auto nn = (*reopened)->NearestNeighbor(data[17]);
  ASSERT_TRUE(nn.ok()) << nn.status().ToString();
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(IqTreeTest, OpenMissingFails) {
  EXPECT_TRUE(IqTree::Open(storage_, "nope", disk_).status().IsNotFound());
}

TEST_F(IqTreeTest, BlockSizeMismatchRejected) {
  const Dataset data = GenerateUniform(100, 4, 3);
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, {}).ok());
  DiskModel other(DiskParameters{0.01, 0.002, 8192});
  EXPECT_TRUE(
      IqTree::Open(storage_, "t", other).status().IsInvalidArgument());
}

TEST_F(IqTreeTest, NoQuantizationVariantUsesExactPagesOnly) {
  const Dataset data = GenerateUniform(3000, 8, 4);
  IqTree::Options options;
  options.quantize = false;
  auto tree = IqTree::Build(data, storage_, "t", disk_, options);
  ASSERT_TRUE(tree.ok());
  for (const DirEntry& entry : (*tree)->directory()) {
    EXPECT_EQ(entry.quant_bits, kExactBits);
    EXPECT_EQ(entry.exact.length, 0u);  // no third level
  }
}

TEST_F(IqTreeTest, FixedLevelVariant) {
  const Dataset data = GenerateUniform(3000, 8, 4);
  IqTree::Options options;
  options.fixed_quant_bits = 4;
  auto tree = IqTree::Build(data, storage_, "t", disk_, options);
  ASSERT_TRUE(tree.ok());
  for (const DirEntry& entry : (*tree)->directory()) {
    EXPECT_EQ(entry.quant_bits, 4u);
  }
  IqTree::Options bad;
  bad.fixed_quant_bits = 3;
  EXPECT_TRUE(IqTree::Build(data, storage_, "u", disk_, bad)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(IqTreeTest, OptimizerMixesLevelsOnSkewedData) {
  // Strongly clustered data: dense pages deserve finer quantization than
  // sparse ones — the core point of *independent* quantization.
  ClusterParams params;
  params.clusters = 3;
  params.sigma = 0.01;
  params.background_fraction = 0.3;
  const Dataset data = GenerateClustered(20000, 8, 5, params);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const auto& per_level = (*tree)->build_stats().pages_per_level;
  size_t levels_used = 0;
  for (size_t count : per_level) levels_used += count > 0 ? 1 : 0;
  EXPECT_GE(levels_used, 2u) << "expected a mix of quantization levels";
}

TEST_F(IqTreeTest, EmptyDatasetBuilds) {
  const Dataset data(4);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_pages(), 0u);
  const std::vector<float> q(4, 0.5f);
  EXPECT_TRUE((*tree)->NearestNeighbor(q).status().IsNotFound());
}

TEST_F(IqTreeTest, QueryDimensionalityChecked) {
  const Dataset data = GenerateUniform(100, 4, 6);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> wrong(3, 0.5f);
  EXPECT_TRUE(
      (*tree)->NearestNeighbor(wrong).status().IsInvalidArgument());
}

TEST_F(IqTreeTest, QueriesChargeSimulatedIo) {
  const Dataset data = GenerateUniform(10000, 8, 7);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  disk_.ResetStats();
  const std::vector<float> q(8, 0.3f);
  ASSERT_TRUE((*tree)->NearestNeighbor(q).ok());
  EXPECT_GT(disk_.stats().io_time_s, 0.0);
  EXPECT_GT(disk_.stats().blocks_read, 0u);
}

TEST_F(IqTreeTest, SelfQueriesFindThemselves) {
  const Dataset data = GenerateColorLike(2000, 8, 8);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  for (size_t i = 0; i < data.size(); i += 97) {
    auto nn = (*tree)->NearestNeighbor(data[i]);
    ASSERT_TRUE(nn.ok());
    EXPECT_EQ(nn->distance, 0.0) << "query " << i;
  }
}

}  // namespace
}  // namespace iq
