// Edge cases across all structures: k larger than the database,
// duplicate-heavy data, single-point indexes, and queries far outside
// the data space. Everything must stay exact and error-free.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "pyramid/pyramid_technique.h"
#include "rstar/r_star_tree.h"
#include "vafile/va_file.h"
#include "xtree/x_tree.h"

namespace iq {
namespace {

class EdgeCasesTest : public ::testing::Test {
 protected:
  EdgeCasesTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(EdgeCasesTest, KLargerThanDatabaseReturnsEverything) {
  const Dataset data = GenerateUniform(25, 4, 1);
  const std::vector<float> q(4, 0.5f);

  auto iq = IqTree::Build(data, storage_, "iq", disk_, {});
  ASSERT_TRUE(iq.ok());
  auto iq_got = (*iq)->KNearestNeighbors(q, 100);
  ASSERT_TRUE(iq_got.ok());
  EXPECT_EQ(iq_got->size(), 25u);

  auto x = XTree::Build(data, storage_, "x", disk_, {});
  ASSERT_TRUE(x.ok());
  auto x_got = (*x)->KNearestNeighbors(q, 100);
  ASSERT_TRUE(x_got.ok());
  EXPECT_EQ(x_got->size(), 25u);

  auto r = RStarTree::Build(data, storage_, "r", disk_, {});
  ASSERT_TRUE(r.ok());
  auto r_got = (*r)->KNearestNeighbors(q, 100);
  ASSERT_TRUE(r_got.ok());
  EXPECT_EQ(r_got->size(), 25u);

  auto va = VaFile::Build(data, storage_, "va", disk_, {});
  ASSERT_TRUE(va.ok());
  auto va_got = (*va)->KNearestNeighbors(q, 100);
  ASSERT_TRUE(va_got.ok());
  EXPECT_EQ(va_got->size(), 25u);

  auto p = PyramidTechnique::Build(data, storage_, "p", disk_, {});
  ASSERT_TRUE(p.ok());
  auto p_got = (*p)->KNearestNeighbors(q, 100);
  ASSERT_TRUE(p_got.ok());
  EXPECT_EQ(p_got->size(), 25u);
}

TEST_F(EdgeCasesTest, MassDuplicatesStayExact) {
  // 500 copies of one point + 500 of another: quantization cells
  // collapse to points, splits see zero-extent MBRs.
  Dataset data(3);
  for (int i = 0; i < 500; ++i) data.Append(std::vector<float>{0.2f, 0.2f, 0.2f});
  for (int i = 0; i < 500; ++i) data.Append(std::vector<float>{0.8f, 0.8f, 0.8f});
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_TRUE((*tree)->Validate().ok());
  const std::vector<float> q{0.21f, 0.2f, 0.2f};
  auto knn = (*tree)->KNearestNeighbors(q, 10);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 10u);
  for (const Neighbor& r : *knn) {
    EXPECT_NEAR(r.distance, 0.01, 1e-5);
  }
  auto in_ball = (*tree)->RangeSearch(q, 0.05);
  ASSERT_TRUE(in_ball.ok());
  EXPECT_EQ(in_ball->size(), 500u);
}

TEST_F(EdgeCasesTest, SinglePointIndex) {
  Dataset data(6);
  data.Append(std::vector<float>(6, 0.3f));
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> q(6, 0.9f);
  auto nn = (*tree)->NearestNeighbor(q);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->id, 0u);
  // Single exact point: stored at the 32-bit level, no third level.
  EXPECT_EQ((*tree)->directory()[0].quant_bits, kExactBits);
}

TEST_F(EdgeCasesTest, QueryFarOutsideDataSpace) {
  Dataset data = GenerateUniform(1000, 4, 2);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const std::vector<float> q{50.0f, -50.0f, 50.0f, -50.0f};
  double best = 1e300;
  for (size_t i = 0; i < data.size(); ++i) {
    best = std::min(best, Distance(q, data[i], Metric::kL2));
  }
  auto nn = (*tree)->NearestNeighbor(q);
  ASSERT_TRUE(nn.ok());
  EXPECT_NEAR(nn->distance, best, 1e-4);
  // Empty results for a window far away.
  const Mbr window = Mbr::FromBounds(std::vector<float>(4, 90.0f),
                                     std::vector<float>(4, 99.0f));
  auto hits = (*tree)->WindowQuery(window);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(EdgeCasesTest, ZeroRadiusRangeFindsExactMatchesOnly) {
  Dataset data = GenerateUniform(500, 3, 3);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  auto hits = (*tree)->RangeSearch(data[7], 0.0);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].id, 7u);
  EXPECT_EQ((*hits)[0].distance, 0.0);
}

TEST_F(EdgeCasesTest, OneDimensionalData) {
  // d = 1 exercises every formula at its degenerate end (binomials,
  // ball volumes, pyramid with 2 pyramids).
  Dataset data = GenerateUniform(2000, 1, 4);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  auto pyramid = PyramidTechnique::Build(data, storage_, "p", disk_, {});
  ASSERT_TRUE(pyramid.ok());
  const std::vector<float> q{0.42f};
  double best = 1e300;
  for (size_t i = 0; i < data.size(); ++i) {
    best = std::min(best, Distance(q, data[i], Metric::kL2));
  }
  auto iq_nn = (*tree)->NearestNeighbor(q);
  ASSERT_TRUE(iq_nn.ok());
  EXPECT_NEAR(iq_nn->distance, best, 1e-6);
  auto p_nn = (*pyramid)->NearestNeighbor(q);
  ASSERT_TRUE(p_nn.ok());
  EXPECT_NEAR(p_nn->distance, best, 1e-6);
}

TEST_F(EdgeCasesTest, LargeBlockSmallData) {
  // A block big enough that everything fits one exact page.
  DiskModel big_blocks(DiskParameters{0.010, 0.002, 1 << 20});
  Dataset data = GenerateUniform(100, 8, 5);
  auto tree = IqTree::Build(data, storage_, "t", big_blocks, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ((*tree)->num_pages(), 1u);
  auto nn = (*tree)->NearestNeighbor(data[50]);
  ASSERT_TRUE(nn.ok());
  EXPECT_EQ(nn->distance, 0.0);
}

TEST_F(EdgeCasesTest, TinyBlockRejectedCleanly) {
  // A block too small for even one exact 16-d point must fail loudly.
  DiskModel tiny(DiskParameters{0.010, 0.002, 64});
  Dataset data = GenerateUniform(10, 16, 6);
  EXPECT_TRUE(IqTree::Build(data, storage_, "t", tiny, {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace iq
