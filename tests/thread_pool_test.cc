#include "concurrency/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace iq {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([]() { return 41 + 1; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> done;
  done.reserve(100);
  for (int i = 0; i < 100; ++i) {
    // Single worker: tasks must run in submission order, so the
    // unsynchronized push_back is safe and the sequence exact.
    done.push_back(pool.Submit([&order, i]() { order.push_back(i); }));
  }
  for (auto& f : done) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<int> fails = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  std::future<int> succeeds = pool.Submit([]() { return 5; });
  EXPECT_THROW(
      {
        try {
          fails.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
  // A throwing task must not take the worker down with it.
  EXPECT_EQ(succeeds.get(), 5);
  EXPECT_EQ(pool.Submit([]() { return 6; }).get(), 6);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Schedule([&executed]() {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destruction races the workers mid-queue: every task must still
    // run ("shutdown while busy" means finish what was accepted).
  }
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPoolTest, ShutdownWhileWorkersBlockedInTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.Schedule([&executed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(executed.load(), 16);
}

TEST(ThreadPoolTest, ManyThreadsHammerSharedCounter) {
  std::atomic<uint64_t> sum{0};
  constexpr int kTasks = 1000;
  {
    ThreadPool pool(8);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      done.push_back(pool.Submit(
          [&sum, i]() { sum.fetch_add(i, std::memory_order_relaxed); }));
    }
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::future<int> nested = pool.Submit([&pool]() {
    // Submit from inside a task: must not deadlock (the inner task may
    // run on the other worker, or on this one after we return — we only
    // wait via the outer future's value here).
    pool.Schedule([]() {});
    return 9;
  });
  EXPECT_EQ(nested.get(), 9);
}

TEST(CondVarTest, WaitForTimesOutWithoutSignal) {
  Mutex mu;
  CondVar cv(&mu);
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(0.01));
}

TEST(CondVarTest, WaitForReturnsTrueWhenSignaled) {
  Mutex mu;
  CondVar cv(&mu);
  bool ready = false;
  std::thread signaler([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.Signal();
  });
  bool signaled = false;
  {
    MutexLock lock(&mu);
    // Predicate loop: WaitFor can wake spuriously, and the signaler
    // may fire before we start waiting.
    while (!ready) {
      if (cv.WaitFor(5.0)) {
        signaled = true;
      } else {
        break;
      }
    }
    EXPECT_TRUE(ready);
  }
  signaler.join();
  (void)signaled;  // true unless the signal won the race before the wait
}

}  // namespace
}  // namespace iq
