#include "core/split_tree_optimizer.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/format.h"
#include "data/generators.h"

namespace iq {
namespace {

// A tiny block size makes split trees shallow enough to enumerate all
// solutions (Definition 1) by brute force.
constexpr uint32_t kTinyBlock = 64;

CostModelParams ModelParams(size_t dims, uint64_t n, double fractal) {
  CostModelParams params;
  params.disk = DiskParameters{0.010, 0.002, kTinyBlock};
  params.metric = Metric::kL2;
  params.dims = dims;
  params.total_points = n;
  params.fractal_dimension = fractal;
  params.dir_entry_bytes = DirEntryBytes(dims);
  params.exact_record_bytes = ExactRecordBytes(dims);
  return params;
}

/// All (num_pages, variable_cost_sum) combinations of the solutions of
/// the split subtree rooted at the given range — mirrors the optimizer's
/// own deterministic median splits.
struct SolutionOption {
  uint64_t pages;
  double variable_sum;
};

void EnumerateSolutions(const Dataset& data, std::span<PointId> ids,
                        const Mbr& mbr, const CostModel& model,
                        std::vector<SolutionOption>* out) {
  const unsigned g = BestQuantLevel(data.dims(), ids.size(), kTinyBlock);
  ASSERT_NE(g, 0u);
  const double own_cost = model.PageRefinementCost(mbr, ids.size(), g);
  out->push_back(SolutionOption{1, own_cost});
  if (g >= kExactBits || ids.size() < 2) return;
  const size_t mid = SplitAtMedian(data, ids, mbr);
  const Mbr left_mbr = MbrOfIds(data, ids.subspan(0, mid));
  const Mbr right_mbr = MbrOfIds(data, ids.subspan(mid));
  std::vector<SolutionOption> left, right;
  EnumerateSolutions(data, ids.subspan(0, mid), left_mbr, model, &left);
  EnumerateSolutions(data, ids.subspan(mid), right_mbr, model, &right);
  for (const SolutionOption& l : left) {
    for (const SolutionOption& r : right) {
      out->push_back(SolutionOption{l.pages + r.pages,
                                    l.variable_sum + r.variable_sum});
    }
  }
}

class OptimizerOptimality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerOptimality, MatchesBruteForceMinimum) {
  const uint64_t seed = GetParam();
  const Dataset data = GenerateUniform(40, 2, seed);
  const CostModel model(ModelParams(2, data.size(), 2.0));

  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const std::vector<Partition> initial{
      Partition{0, data.size(), MbrOfIds(data, ids)}};
  const OptimizerResult result = OptimizeQuantization(
      data, ids, initial, model, kTinyBlock);

  // Brute-force all solutions on an identical tree.
  std::vector<PointId> ids2(data.size());
  std::iota(ids2.begin(), ids2.end(), 0);
  std::vector<SolutionOption> options;
  EnumerateSolutions(data, ids2, initial[0].mbr, model, &options);
  double best = 1e300;
  for (const SolutionOption& option : options) {
    best = std::min(best,
                    model.TotalCost(option.pages, option.variable_sum));
  }
  EXPECT_NEAR(result.expected_cost, best, 1e-9 + 1e-9 * best)
      << "seed " << seed << " (" << options.size() << " solutions)";
  EXPECT_GE(result.expected_cost, best - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerOptimality,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(OptimizerTest, SolutionIsAValidCover) {
  const Dataset data = GenerateCadLike(500, 4, 3);
  const CostModel model(ModelParams(4, data.size(), 3.0));
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const uint32_t cap1 = QuantPageCapacity(4, 1, kTinyBlock);
  const std::vector<Partition> initial = PartitionDataset(data, ids, cap1);
  const OptimizerResult result =
      OptimizeQuantization(data, ids, initial, model, kTinyBlock);
  ASSERT_FALSE(result.pages.empty());
  size_t expect_begin = 0;
  for (const SolutionPage& page : result.pages) {
    EXPECT_EQ(page.begin, expect_begin);
    expect_begin = page.end;
    EXPECT_TRUE(IsQuantLevel(page.quant_bits));
    EXPECT_LE(page.count(),
              QuantPageCapacity(4, page.quant_bits, kTinyBlock));
    for (size_t i = page.begin; i < page.end; ++i) {
      EXPECT_TRUE(page.mbr.Contains(data[ids[i]]));
    }
  }
  EXPECT_EQ(expect_begin, data.size());
  EXPECT_EQ(result.pages.size(), initial.size() + result.splits_kept);
  EXPECT_LE(result.splits_kept, result.splits_explored);
}

TEST(OptimizerTest, CostTraceRecordsEveryStep) {
  const Dataset data = GenerateUniform(100, 3, 5);
  const CostModel model(ModelParams(3, data.size(), 3.0));
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const std::vector<Partition> initial{
      Partition{0, data.size(), MbrOfIds(data, ids)}};
  const OptimizerResult result =
      OptimizeQuantization(data, ids, initial, model, kTinyBlock);
  EXPECT_EQ(result.cost_trace.size(), result.splits_explored + 1);
  // The chosen cost is the minimum of the trace.
  const double min_trace =
      *std::min_element(result.cost_trace.begin(), result.cost_trace.end());
  EXPECT_DOUBLE_EQ(result.expected_cost, min_trace);
  EXPECT_DOUBLE_EQ(result.cost_trace[result.splits_kept],
                   result.expected_cost);
}

TEST(OptimizerTest, CoarseDataStopsEarlyFineWhenRefinementDominates) {
  // With a huge seek cost, refinement lookups are expensive and the
  // optimizer should buy accuracy with more pages (more splits kept)
  // than with a free disk.
  const Dataset data = GenerateUniform(200, 2, 6);
  std::vector<PointId> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  const std::vector<Partition> initial{
      Partition{0, data.size(), MbrOfIds(data, ids)}};

  CostModelParams expensive = ModelParams(2, data.size(), 2.0);
  expensive.disk.seek_time_s = 1.0;
  std::vector<PointId> ids_a = ids;
  const OptimizerResult with_expensive_seek = OptimizeQuantization(
      data, ids_a, initial, CostModel(expensive), kTinyBlock);

  CostModelParams cheap = ModelParams(2, data.size(), 2.0);
  cheap.disk.seek_time_s = 1e-7;
  cheap.disk.xfer_time_s = 1e-7;
  std::vector<PointId> ids_b = ids;
  const OptimizerResult with_cheap_disk = OptimizeQuantization(
      data, ids_b, initial, CostModel(cheap), kTinyBlock);

  EXPECT_GE(with_expensive_seek.splits_kept, with_cheap_disk.splits_kept);
}

TEST(OptimizerTest, EmptyInput) {
  const Dataset data(2);
  std::vector<PointId> ids;
  const CostModel model(ModelParams(2, 1, 2.0));
  const OptimizerResult result =
      OptimizeQuantization(data, ids, {}, model, kTinyBlock);
  EXPECT_TRUE(result.pages.empty());
}

}  // namespace
}  // namespace iq
