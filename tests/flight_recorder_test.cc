#include "obs/flight_recorder.h"

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace iq {
namespace {

// The recorder is process-global and rings persist for the process
// lifetime, so every test starts from Clear() — heads and dump state
// reset, registered rings stay (their indices are stable thread ids).

TEST(FlightRecorderTest, RecordAndSnapshotRoundTrip) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Clear();
  recorder.Record(obs::FlightEventType::kAdmissionAccept, 3, 0.25);
  recorder.Record(obs::FlightEventType::kShardPrune, 7, 1.5, 2.5);
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(events[0].type, obs::FlightEventType::kAdmissionAccept);
  EXPECT_EQ(events[0].arg, 3u);
  EXPECT_DOUBLE_EQ(events[0].v0, 0.25);
  EXPECT_EQ(events[1].type, obs::FlightEventType::kShardPrune);
  EXPECT_EQ(events[1].arg, 7u);
  EXPECT_DOUBLE_EQ(events[1].v0, 1.5);
  EXPECT_DOUBLE_EQ(events[1].v1, 2.5);
  // Same thread, ascending per-thread sequence and timestamps.
  EXPECT_EQ(events[0].thread, events[1].thread);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST(FlightRecorderTest, RingWrapKeepsNewestAndCountsDropped) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Clear();
  const size_t total = obs::FlightRecorder::kRingCapacity + 10;
  for (size_t i = 0; i < total; ++i) {
    recorder.Record(obs::FlightEventType::kDeadlineCheck,
                    static_cast<uint32_t>(i));
  }
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), obs::FlightRecorder::kRingCapacity);
  EXPECT_EQ(recorder.recorded(), total);
  EXPECT_EQ(recorder.dropped(), 10u);
  // The oldest 10 events were overwritten; the survivors are the tail.
  EXPECT_EQ(events.front().arg, 10u);
  EXPECT_EQ(events.back().arg, static_cast<uint32_t>(total - 1));
}

TEST(FlightRecorderTest, TriggerDumpRetainsTaggedJson) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Clear();
  EXPECT_TRUE(recorder.last_dump().empty());
  recorder.Record(obs::FlightEventType::kAdmissionReject, 9);
  recorder.TriggerDump("rejected");
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.last_dump_reason(), "rejected");
  const std::string dump = recorder.last_dump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("\"reason\":\"rejected\""), std::string::npos);
  EXPECT_NE(dump.find("\"admission_reject\""), std::string::npos);
  EXPECT_NE(dump.find("\"schema_version\":1"), std::string::npos);
}

TEST(FlightRecorderTest, ClearResetsEventsAndDumpState) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Record(obs::FlightEventType::kWaveDispatch, 0, 4.0);
  recorder.TriggerDump("on_demand");
  recorder.Clear();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.dumps(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_TRUE(recorder.last_dump().empty());
  EXPECT_TRUE(recorder.last_dump_reason().empty());
}

TEST(FlightRecorderTest, ThreadsGetDistinctRings) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with IQ_OBS_DISABLED";
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Clear();
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 50;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (size_t i = 0; i < kPerThread; ++i) {
        recorder.Record(obs::FlightEventType::kPoolTask,
                        static_cast<uint32_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kPerThread);
  const std::vector<obs::FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  std::set<uint32_t> producer_threads;
  for (const obs::FlightEvent& event : events) {
    producer_threads.insert(event.thread);
  }
  EXPECT_EQ(producer_threads.size(), kThreads);
}

TEST(FlightRecorderTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(
      obs::FlightEventTypeName(obs::FlightEventType::kAdmissionAccept),
      "admission_accept");
  EXPECT_STREQ(
      obs::FlightEventTypeName(obs::FlightEventType::kShardPrune),
      "shard_prune");
  EXPECT_STREQ(
      obs::FlightEventTypeName(obs::FlightEventType::kDeadlineExceeded),
      "deadline_exceeded");
}

TEST(FlightRecorderTest, FlightToJsonEmitsSchema) {
  std::vector<obs::FlightEvent> events(1);
  events[0].ts_ns = 42;
  events[0].type = obs::FlightEventType::kQueueExit;
  events[0].thread = 1;
  events[0].seq = 2;
  events[0].arg = 3;
  events[0].v0 = 0.5;
  const std::string json =
      obs::FlightToJson(events, "on_demand", /*recorded=*/7,
                        /*dropped=*/1);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"on_demand\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":7"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_exit\""), std::string::npos);
  EXPECT_NE(json.find("\"ts_ns\":42"), std::string::npos);
}

TEST(FlightRecorderTest, DisabledBuildIsInert) {
  if (obs::kEnabled) {
    GTEST_SKIP() << "covers the IQ_OBS_DISABLED configuration";
  }
  // Every member is an inline no-op: nothing recorded, nothing dumped,
  // and the calls are legal from any context.
  auto& recorder = obs::FlightRecorder::Global();
  recorder.Record(obs::FlightEventType::kAdmissionAccept, 1, 2.0, 3.0);
  recorder.TriggerDump("rejected");
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.dumps(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
  EXPECT_TRUE(recorder.last_dump().empty());
  EXPECT_TRUE(recorder.last_dump_reason().empty());
}

}  // namespace
}  // namespace iq
