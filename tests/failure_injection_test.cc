// Failure injection: corrupted or truncated index files must surface as
// Status errors (Corruption / IOError / NotFound), never as crashes or
// silently wrong answers.

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "data/generators.h"
#include "scan/seq_scan.h"
#include "vafile/va_file.h"
#include "xtree/x_tree.h"

namespace iq {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  void Corrupt(const std::string& file, uint64_t offset, uint8_t value) {
    auto f = storage_.Open(file);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Write(offset, 1, &value).ok());
  }

  void Truncate(const std::string& file, double fraction) {
    auto f = storage_.Open(file);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(
        (*f)->Resize(static_cast<uint64_t>((*f)->Size() * fraction)).ok());
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(FailureInjectionTest, IqTreeBadDirectoryMagic) {
  const Dataset data = GenerateUniform(500, 4, 1);
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, {}).ok());
  Corrupt("t.dir", 0, 0xFF);
  EXPECT_TRUE(IqTree::Open(storage_, "t", disk_).status().IsCorruption());
}

TEST_F(FailureInjectionTest, IqTreeTruncatedDirectory) {
  const Dataset data = GenerateUniform(2000, 8, 2);
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, {}).ok());
  Truncate("t.dir", 0.5);
  EXPECT_TRUE(IqTree::Open(storage_, "t", disk_).status().IsCorruption());
}

TEST_F(FailureInjectionTest, IqTreeMissingQpgFile) {
  const Dataset data = GenerateUniform(500, 4, 3);
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, {}).ok());
  ASSERT_TRUE(storage_.Delete("t.qpg").ok());
  EXPECT_FALSE(IqTree::Open(storage_, "t", disk_).ok());
}

TEST_F(FailureInjectionTest, IqTreeTruncatedQpgDetectedAtQuery) {
  const Dataset data = GenerateUniform(5000, 8, 4);
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, {}).ok());
  // Zero out a quantized page: its header no longer matches the
  // directory; the query must fail loudly, not return wrong results.
  {
    auto f = storage_.Open("t.qpg");
    ASSERT_TRUE(f.ok());
    std::vector<uint8_t> zeros(2048, 0);
    ASSERT_TRUE((*f)->Write(0, zeros.size(), zeros.data()).ok());
  }
  auto tree = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(tree.ok());
  bool any_failed = false;
  for (size_t i = 0; i < 20; ++i) {
    const Dataset q = GenerateUniform(1, 8, 100 + i);
    auto nn = (*tree)->NearestNeighbor(q[0]);
    if (!nn.ok()) {
      EXPECT_TRUE(nn.status().IsCorruption()) << nn.status().ToString();
      any_failed = true;
    }
  }
  EXPECT_TRUE(any_failed);
}

TEST_F(FailureInjectionTest, IqTreeTruncatedDatDetectedAtRefinement) {
  const Dataset data = GenerateUniform(5000, 8, 5);
  ASSERT_TRUE(IqTree::Build(data, storage_, "t", disk_, {}).ok());
  Truncate("t.dat", 0.0);
  // Open validates extent ranges against the file size.
  EXPECT_TRUE(IqTree::Open(storage_, "t", disk_).status().IsCorruption());
}

TEST_F(FailureInjectionTest, XTreeCorruptDirectory) {
  const Dataset data = GenerateUniform(1000, 4, 6);
  ASSERT_TRUE(XTree::Build(data, storage_, "x", disk_, {}).ok());
  Corrupt("x.xdir", 0, 0x00);
  EXPECT_TRUE(XTree::Open(storage_, "x", disk_).status().IsCorruption());
}

TEST_F(FailureInjectionTest, XTreeTruncatedDirectory) {
  const Dataset data = GenerateUniform(1000, 4, 7);
  ASSERT_TRUE(XTree::Build(data, storage_, "x", disk_, {}).ok());
  Truncate("x.xdir", 0.6);
  EXPECT_FALSE(XTree::Open(storage_, "x", disk_).ok());
}

TEST_F(FailureInjectionTest, VaFileCorruptHeader) {
  const Dataset data = GenerateUniform(500, 4, 8);
  {
    auto va = VaFile::Build(data, storage_, "va", disk_, {});
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE((*va)->Flush().ok());
  }
  Corrupt("va.vaa", 1, 0xEE);
  EXPECT_TRUE(VaFile::Open(storage_, "va", disk_).status().IsCorruption());
}

TEST_F(FailureInjectionTest, VaFileTruncatedVectors) {
  const Dataset data = GenerateUniform(500, 4, 9);
  {
    auto va = VaFile::Build(data, storage_, "va", disk_, {});
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE((*va)->Flush().ok());
  }
  Truncate("va.vav", 0.5);
  EXPECT_TRUE(VaFile::Open(storage_, "va", disk_).status().IsCorruption());
}

TEST_F(FailureInjectionTest, ScanTruncatedPayload) {
  const Dataset data = GenerateUniform(500, 4, 10);
  ASSERT_TRUE(SeqScan::Build(data, storage_, "s", disk_, {}).ok());
  Truncate("s.scn", 0.5);
  EXPECT_TRUE(SeqScan::Open(storage_, "s", disk_).status().IsCorruption());
}

TEST_F(FailureInjectionTest, EverythingMissingIsNotFound) {
  EXPECT_TRUE(IqTree::Open(storage_, "a", disk_).status().IsNotFound());
  EXPECT_TRUE(XTree::Open(storage_, "b", disk_).status().IsNotFound());
  EXPECT_TRUE(VaFile::Open(storage_, "c", disk_).status().IsNotFound());
  EXPECT_TRUE(SeqScan::Open(storage_, "d", disk_).status().IsNotFound());
}

}  // namespace
}  // namespace iq
