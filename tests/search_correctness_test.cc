// Cross-structure correctness matrix: every index in the library
// (IQ-tree, X-tree, R*-tree, VA-file, Pyramid-Technique) must return
// *identical exact distances* to the sequential scan on every workload
// the paper evaluates, across metrics, dimensions and seeds. This is
// the end-to-end guarantee that quantization, scheduling and pruning
// never trade correctness for speed.

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "core/iq_tree.h"
#include "pyramid/pyramid_technique.h"
#include "rstar/r_star_tree.h"
#include "data/generators.h"
#include "scan/seq_scan.h"
#include "vafile/va_file.h"
#include "xtree/x_tree.h"

namespace iq {
namespace {

enum class Workload { kUniform, kCad, kColor, kWeather };

struct MatrixCase {
  Workload workload;
  size_t dims;
  Metric metric;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name;
  switch (info.param.workload) {
    case Workload::kUniform:
      name = "Uniform";
      break;
    case Workload::kCad:
      name = "Cad";
      break;
    case Workload::kColor:
      name = "Color";
      break;
    case Workload::kWeather:
      name = "Weather";
      break;
  }
  name += std::to_string(info.param.dims);
  name += info.param.metric == Metric::kL2 ? "L2" : "LMax";
  name += "Seed" + std::to_string(info.param.seed);
  return name;
}

Dataset MakeWorkload(Workload workload, size_t n, size_t dims,
                     uint64_t seed) {
  switch (workload) {
    case Workload::kUniform:
      return GenerateUniform(n, dims, seed);
    case Workload::kCad:
      return GenerateCadLike(n, dims, seed);
    case Workload::kColor:
      return GenerateColorLike(n, dims, seed);
    case Workload::kWeather:
      return GenerateWeatherLike(n, dims, seed);
  }
  return Dataset(dims);
}

class SearchMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SearchMatrix, AllStructuresAgreeWithScan) {
  const MatrixCase c = GetParam();
  Dataset data = MakeWorkload(c.workload, 2512, c.dims, c.seed);
  const Dataset queries = data.TakeTail(12);

  MemoryStorage storage;
  DiskModel disk(DiskParameters{0.010, 0.002, 2048});

  SeqScan::Options scan_options;
  scan_options.metric = c.metric;
  auto scan = SeqScan::Build(data, storage, "s", disk, scan_options);
  ASSERT_TRUE(scan.ok());

  IqTree::Options iq_options;
  iq_options.metric = c.metric;
  auto iq = IqTree::Build(data, storage, "iq", disk, iq_options);
  ASSERT_TRUE(iq.ok()) << iq.status().ToString();

  XTree::Options x_options;
  x_options.metric = c.metric;
  auto xtree = XTree::Build(data, storage, "x", disk, x_options);
  ASSERT_TRUE(xtree.ok());

  VaFile::Options va_options;
  va_options.metric = c.metric;
  va_options.bits_per_dim = 4;
  auto va = VaFile::Build(data, storage, "va", disk, va_options);
  ASSERT_TRUE(va.ok());

  RStarTree::Options r_options;
  r_options.metric = c.metric;
  auto rstar = RStarTree::Build(data, storage, "r", disk, r_options);
  ASSERT_TRUE(rstar.ok());

  PyramidTechnique::Options p_options;
  p_options.metric = c.metric;
  auto pyramid = PyramidTechnique::Build(data, storage, "py", disk,
                                         p_options);
  ASSERT_TRUE(pyramid.ok());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const size_t k = 1 + qi % 4;  // k in 1..4
    auto truth = (*scan)->KNearestNeighbors(queries[qi], k);
    ASSERT_TRUE(truth.ok());
    auto iq_got = (*iq)->KNearestNeighbors(queries[qi], k);
    ASSERT_TRUE(iq_got.ok()) << iq_got.status().ToString();
    auto x_got = (*xtree)->KNearestNeighbors(queries[qi], k);
    ASSERT_TRUE(x_got.ok());
    auto va_got = (*va)->KNearestNeighbors(queries[qi], k);
    ASSERT_TRUE(va_got.ok());
    auto r_got = (*rstar)->KNearestNeighbors(queries[qi], k);
    ASSERT_TRUE(r_got.ok());
    auto p_got = (*pyramid)->KNearestNeighbors(queries[qi], k);
    ASSERT_TRUE(p_got.ok()) << p_got.status().ToString();
    ASSERT_EQ(truth->size(), k);
    ASSERT_EQ(iq_got->size(), k);
    ASSERT_EQ(x_got->size(), k);
    ASSERT_EQ(va_got->size(), k);
    ASSERT_EQ(r_got->size(), k);
    ASSERT_EQ(p_got->size(), k);
    for (size_t i = 0; i < k; ++i) {
      const double expected = (*truth)[i].distance;
      EXPECT_NEAR((*iq_got)[i].distance, expected, 1e-6)
          << "IQ-tree rank " << i << " query " << qi;
      EXPECT_NEAR((*x_got)[i].distance, expected, 1e-6)
          << "X-tree rank " << i << " query " << qi;
      EXPECT_NEAR((*va_got)[i].distance, expected, 1e-6)
          << "VA-file rank " << i << " query " << qi;
      EXPECT_NEAR((*r_got)[i].distance, expected, 1e-6)
          << "R*-tree rank " << i << " query " << qi;
      EXPECT_NEAR((*p_got)[i].distance, expected, 1e-6)
          << "Pyramid rank " << i << " query " << qi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SearchMatrix,
    ::testing::Values(
        MatrixCase{Workload::kUniform, 4, Metric::kL2, 1},
        MatrixCase{Workload::kUniform, 16, Metric::kL2, 2},
        MatrixCase{Workload::kUniform, 8, Metric::kLMax, 3},
        MatrixCase{Workload::kCad, 16, Metric::kL2, 4},
        MatrixCase{Workload::kColor, 16, Metric::kL2, 5},
        MatrixCase{Workload::kWeather, 9, Metric::kL2, 6},
        MatrixCase{Workload::kWeather, 9, Metric::kLMax, 7}),
    CaseName);

}  // namespace
}  // namespace iq
