#include "costmodel/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace iq {
namespace {

CostModelParams UniformParams(size_t dims, uint64_t n) {
  CostModelParams params;
  params.disk = DiskParameters{0.010, 0.002, 8192};
  params.metric = Metric::kL2;
  params.dims = dims;
  params.total_points = n;
  params.fractal_dimension = static_cast<double>(dims);
  params.dir_entry_bytes = 2 * 4 * dims + 28;
  params.exact_record_bytes = 4 + 4 * dims;
  return params;
}

TEST(CostModelTest, UniformDensityMatchesDefinition) {
  const CostModel model(UniformParams(2, 1000));
  const Mbr mbr = Mbr::FromBounds({0, 0}, {0.5, 0.5});
  // 100 points in volume 0.25 -> density 400.
  EXPECT_NEAR(model.FractalPointDensity(mbr, 100), 400.0, 1e-6);
}

TEST(CostModelTest, NnRadiusContainsOneExpectedPoint) {
  const CostModel model(UniformParams(2, 1000));
  const Mbr mbr = Mbr::FromBounds({0, 0}, {1, 1});
  const double r = model.ExpectedNnRadius(mbr, 100);
  // Ball volume * density == 1.
  EXPECT_NEAR(M_PI * r * r * 100.0, 1.0, 1e-6);
}

TEST(CostModelTest, RefinementProbabilityDecreasesWithBits) {
  const CostModel model(UniformParams(8, 100000));
  const Mbr mbr = Mbr::FromBounds(std::vector<float>(8, 0.0f),
                                  std::vector<float>(8, 0.25f));
  double prev = 1.1;
  for (unsigned g : {1u, 2u, 4u, 8u, 16u}) {
    const double p = model.RefinementProbability(mbr, 500, g);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LT(p, prev) << "g=" << g;
    prev = p;
  }
  EXPECT_EQ(model.RefinementProbability(mbr, 500, 32), 0.0);
}

TEST(CostModelTest, RefinementImprovementDiminishes) {
  // The paper's monotonicity property (eqns 24-26): going 1->2 bits
  // saves more than 2->4, which saves more than 4->8...
  const CostModel model(UniformParams(8, 100000));
  const Mbr mbr = Mbr::FromBounds(std::vector<float>(8, 0.0f),
                                  std::vector<float>(8, 0.25f));
  const unsigned ladder[] = {1, 2, 4, 8, 16};
  double prev_drop = 1e9;
  for (size_t i = 0; i + 1 < std::size(ladder); ++i) {
    const double drop = model.RefinementProbability(mbr, 500, ladder[i]) -
                        model.RefinementProbability(mbr, 500, ladder[i + 1]);
    EXPECT_GE(drop, 0.0);
    EXPECT_LE(drop, prev_drop + 1e-12);
    prev_drop = drop;
  }
}

TEST(CostModelTest, PageRefinementCostMonotoneInBits) {
  const CostModel model(UniformParams(16, 500000));
  const Mbr mbr = Mbr::FromBounds(std::vector<float>(16, 0.2f),
                                  std::vector<float>(16, 0.6f));
  double prev = 1e18;
  for (unsigned g : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double cost = model.PageRefinementCost(mbr, 1000, g);
    EXPECT_LE(cost, prev);
    prev = cost;
  }
  EXPECT_EQ(model.PageRefinementCost(mbr, 1000, 32), 0.0);
}

TEST(CostModelTest, ExpectedPagesAccessedBounds) {
  const CostModel model(UniformParams(16, 500000));
  for (uint64_t n : {1ull, 10ull, 100ull, 10000ull}) {
    const double k = model.ExpectedPagesAccessed(n);
    EXPECT_GE(k, n == 0 ? 0.0 : std::min<double>(1.0, n));
    EXPECT_LE(k, static_cast<double>(n));
  }
}

TEST(CostModelTest, HighDimAccessesMorePagesThanLowDim) {
  // The dimensionality curse in the model: at equal page count, a
  // 16-d uniform workload touches a much larger fraction of pages.
  const CostModel low(UniformParams(4, 100000));
  const CostModel high(UniformParams(16, 100000));
  const double k_low = low.ExpectedPagesAccessed(1000);
  const double k_high = high.ExpectedPagesAccessed(1000);
  EXPECT_GT(k_high, 2.0 * k_low);
}

TEST(CostModelTest, OptimizedReadCostBetweenSequentialAndRandom) {
  const CostModel model(UniformParams(8, 100000));
  const uint64_t n = 1000;
  const DiskParameters disk = model.params().disk;
  for (double k : {2.0, 10.0, 100.0, 500.0, 1000.0}) {
    const double cost = model.OptimizedReadCost(k, n);
    const double all_random = k * (disk.seek_time_s + disk.xfer_time_s);
    const double full_scan =
        disk.seek_time_s + static_cast<double>(n) * disk.xfer_time_s;
    EXPECT_LE(cost, all_random + 1e-9) << "k=" << k;
    EXPECT_LE(cost, full_scan + disk.seek_time_s + 1e-9) << "k=" << k;
    EXPECT_GE(cost, disk.seek_time_s + k * disk.xfer_time_s - 1e-9);
  }
}

TEST(CostModelTest, DirectoryScanCostLinear) {
  const CostModel model(UniformParams(16, 500000));
  const double t1 = model.DirectoryScanCost(100);
  const double t2 = model.DirectoryScanCost(10000);
  EXPECT_GT(t2, t1);
  // Roughly linear in n (both dominated by transfer).
  EXPECT_NEAR(t2 / t1, 60.0, 45.0);
}

TEST(CostModelTest, TotalCostComposes) {
  const CostModel model(UniformParams(8, 100000));
  const double total = model.TotalCost(500, 0.123);
  EXPECT_NEAR(total, model.DirectoryScanCost(500) +
                         model.SecondLevelCost(500) + 0.123,
              1e-12);
}

TEST(CostModelTest, KnnTargetGrowsRadiusAndAccesses) {
  // §3.4 footnote: the k-NN model uses the ball expected to hold k
  // points — monotone in k for both the radius and the page accesses.
  CostModelParams params = UniformParams(8, 100000);
  const Mbr mbr = Mbr::FromBounds(std::vector<float>(8, 0.0f),
                                  std::vector<float>(8, 0.5f));
  double prev_radius = 0.0;
  double prev_k_pages = 0.0;
  for (unsigned k : {1u, 5u, 25u, 100u}) {
    params.knn_k = k;
    const CostModel model(params);
    const double radius = model.ExpectedNnRadius(mbr, 1000);
    const double pages = model.ExpectedPagesAccessed(500);
    EXPECT_GT(radius, prev_radius) << "k=" << k;
    EXPECT_GE(pages, prev_k_pages) << "k=" << k;
    prev_radius = radius;
    prev_k_pages = pages;
  }
}

TEST(CostModelTest, KnnTargetRaisesRefinementProbability) {
  CostModelParams params = UniformParams(8, 100000);
  const Mbr mbr = Mbr::FromBounds(std::vector<float>(8, 0.0f),
                                  std::vector<float>(8, 0.5f));
  params.knn_k = 1;
  const CostModel nn(params);
  params.knn_k = 50;
  const CostModel knn(params);
  EXPECT_GT(knn.RefinementProbability(mbr, 1000, 4),
            nn.RefinementProbability(mbr, 1000, 4));
}

TEST(CostModelTest, FractalDimensionReducesAccessedPages) {
  // Correlated data (low D_F) should predict far fewer page accesses
  // than uniform data at the same n — the reason the paper's model
  // handles real data sets well.
  CostModelParams uniform = UniformParams(16, 500000);
  CostModelParams correlated = UniformParams(16, 500000);
  correlated.fractal_dimension = 4.0;
  const CostModel model_u(uniform);
  const CostModel model_c(correlated);
  EXPECT_LT(model_c.ExpectedPagesAccessed(2000),
            0.5 * model_u.ExpectedPagesAccessed(2000));
}

}  // namespace
}  // namespace iq
