#include "io/storage.h"

#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace iq {
namespace {

class StorageTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      dir_ = ::testing::TempDir() + "/iq_storage_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this));
      std::filesystem::create_directories(dir_);
      storage_ = std::make_unique<FileStorage>(dir_);
    } else {
      storage_ = std::make_unique<MemoryStorage>();
    }
  }

  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<Storage> storage_;
  std::string dir_;
};

TEST_P(StorageTest, CreateWriteReadRoundTrip) {
  auto file = storage_->Create("f");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const char payload[] = "hello disk";
  ASSERT_TRUE((*file)->Write(0, sizeof(payload), payload).ok());
  EXPECT_EQ((*file)->Size(), sizeof(payload));
  char buf[sizeof(payload)] = {};
  ASSERT_TRUE((*file)->Read(0, sizeof(payload), buf).ok());
  EXPECT_EQ(std::memcmp(buf, payload, sizeof(payload)), 0);
}

TEST_P(StorageTest, WriteAtOffsetExtends) {
  auto file = storage_->Create("f");
  ASSERT_TRUE(file.ok());
  const uint32_t v = 0xDEADBEEF;
  ASSERT_TRUE((*file)->Write(100, sizeof(v), &v).ok());
  EXPECT_EQ((*file)->Size(), 104u);
  uint32_t got = 0;
  ASSERT_TRUE((*file)->Read(100, sizeof(got), &got).ok());
  EXPECT_EQ(got, v);
}

TEST_P(StorageTest, ShortReadFails) {
  auto file = storage_->Create("f");
  ASSERT_TRUE(file.ok());
  const char b = 'x';
  ASSERT_TRUE((*file)->Write(0, 1, &b).ok());
  char buf[8];
  Status s = (*file)->Read(0, 8, buf);
  EXPECT_FALSE(s.ok());
}

TEST_P(StorageTest, OpenMissingIsNotFound) {
  auto file = storage_->Open("missing");
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsNotFound());
}

TEST_P(StorageTest, ExistsAndDelete) {
  EXPECT_FALSE(storage_->Exists("f"));
  ASSERT_TRUE(storage_->Create("f").ok());
  EXPECT_TRUE(storage_->Exists("f"));
  EXPECT_TRUE(storage_->Delete("f").ok());
  EXPECT_FALSE(storage_->Exists("f"));
  EXPECT_TRUE(storage_->Delete("f").IsNotFound());
}

TEST_P(StorageTest, ReopenSeesData) {
  {
    auto file = storage_->Create("persist");
    ASSERT_TRUE(file.ok());
    const int v = 42;
    ASSERT_TRUE((*file)->Write(0, sizeof(v), &v).ok());
  }
  auto file = storage_->Open("persist");
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  int got = 0;
  ASSERT_TRUE((*file)->Read(0, sizeof(got), &got).ok());
  EXPECT_EQ(got, 42);
}

TEST_P(StorageTest, CreateTruncatesExisting) {
  {
    auto file = storage_->Create("t");
    ASSERT_TRUE(file.ok());
    const int v = 1;
    ASSERT_TRUE((*file)->Write(0, sizeof(v), &v).ok());
  }
  auto file = storage_->Create("t");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(MemoryAndFile, StorageTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "File" : "Memory";
                         });

}  // namespace
}  // namespace iq
