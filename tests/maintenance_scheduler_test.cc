// Workload-adaptive maintenance (src/maint/): policy planning, the
// tier-2 Maint* page swaps, and the scheduler's round loop including
// prediction verification. Everything runs on MemoryStorage with the
// simulated DiskModel, so telemetry and plans are deterministic.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "maint/maintenance_scheduler.h"
#include "maint/shard_maintenance.h"
#include "obs/metrics.h"
#include "shard/sharded_bulk_loader.h"

namespace iq {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest() : disk_(DiskParameters{0.010, 0.002, 2048}) {}

  /// Exact kNN over `data` by brute force: the ground truth every
  /// post-maintenance query must still reproduce bit-for-bit.
  std::vector<double> BruteDistances(const Dataset& data, PointView q,
                                     size_t k) {
    std::vector<double> d;
    d.reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      d.push_back(Distance(q, data[i], Metric::kL2));
    }
    std::sort(d.begin(), d.end());
    d.resize(std::min(k, d.size()));
    return d;
  }

  /// Runs `queries` against the tree with telemetry attached and checks
  /// every answer against brute force (exact distances).
  void RunAndCheck(const IqTree& tree, const Dataset& data,
                   const Dataset& queries, size_t k,
                   obs::PageStatsCollector* collector) {
    IqSearchOptions options;
    options.page_stats = collector;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto result = tree.KNearestNeighbors(queries[qi], k, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const std::vector<double> want = BruteDistances(data, queries[qi], k);
      ASSERT_EQ(result->size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ((*result)[i].distance, want[i])
            << "query " << qi << " slot " << i;
      }
    }
  }

  uint64_t DirPoints(const IqTree& tree) {
    uint64_t total = 0;
    for (const DirEntry& entry : tree.directory()) total += entry.count;
    return total;
  }

  MemoryStorage storage_;
  DiskModel disk_;
};

TEST_F(MaintenanceTest, PageStatsCollectorRecordsRefinements) {
  const Dataset data = GenerateCadLike(4000, 8, 3);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  obs::PageStatsCollector collector;
  IqSearchOptions options;
  options.page_stats = &collector;
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*tree)->KNearestNeighbors(data[i], 3, options).ok());
  }
  EXPECT_EQ(collector.queries(), 8u);
  const auto samples = collector.Snapshot();
  EXPECT_FALSE(samples.empty());
  uint64_t decodes = 0;
  uint64_t refinements = 0;
  double refine_io = 0.0;
  for (const auto& [key, sample] : samples) {
    decodes += sample.decodes;
    refinements += sample.refinements;
    refine_io += sample.refine_io_s;
  }
  EXPECT_GT(decodes, 0u);
  // A kNN query must refine at least the page holding its answer.
  EXPECT_GT(refinements, 0u);
  EXPECT_GT(refine_io, 0.0);
  collector.Clear();
  EXPECT_EQ(collector.queries(), 0u);
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST_F(MaintenanceTest, PolicyPlansNothingWithoutCauseOrTelemetry) {
  // Freshly built quantized tree: every page already sits at its best
  // level, and with zero recorded queries the policy has no workload
  // evidence — the plan must be empty (no thrash on a healthy index).
  const Dataset data = GenerateCadLike(6000, 8, 5);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  obs::PageStatsCollector collector;
  maint::MaintenancePolicy policy(maint::MaintenancePolicyConfig{});
  EXPECT_TRUE(policy.Plan(**tree, collector).empty());
}

TEST_F(MaintenanceTest, PolicyPlansRequantizeOnStaleLevels) {
  // A fixed-rate tree stores every page at g=2 regardless of occupancy;
  // underfull pages fit finer levels, so the model alone (no telemetry
  // needed) justifies re-quantization.
  const Dataset data = GenerateUniform(100, 8, 7);
  IqTree::Options build;
  build.fixed_quant_bits = 2;
  auto tree = IqTree::Build(data, storage_, "t", disk_, build);
  ASSERT_TRUE(tree.ok());
  obs::PageStatsCollector collector;
  maint::MaintenancePolicy policy(maint::MaintenancePolicyConfig{});
  const std::vector<maint::MaintAction> plan = policy.Plan(**tree, collector);
  ASSERT_FALSE(plan.empty());
  for (const maint::MaintAction& action : plan) {
    EXPECT_EQ(action.kind, maint::MaintActionKind::kRequantize);
    EXPECT_GT(action.predicted_gain_s, 0.0);
    EXPECT_GT(action.new_bits,
              (*tree)->directory()[action.dir_index].quant_bits);
  }
}

TEST_F(MaintenanceTest, MaintRequantizePreservesAnswers) {
  const Dataset data = GenerateUniform(100, 8, 7);
  IqTree::Options build;
  build.fixed_quant_bits = 2;
  auto tree = IqTree::Build(data, storage_, "t", disk_, build);
  ASSERT_TRUE(tree.ok());
  const Dataset queries = GenerateUniform(10, 8, 8);
  const uint64_t points = (*tree)->size();
  const uint64_t version = (*tree)->dir_version();

  const unsigned g_best = BestQuantLevel(
      8, (*tree)->directory()[0].count, disk_.params().block_size);
  ASSERT_NE(g_best, (*tree)->directory()[0].quant_bits);
  ASSERT_TRUE((*tree)->MaintRequantizeEntry(0, g_best).ok());

  EXPECT_GT((*tree)->dir_version(), version);
  EXPECT_EQ((*tree)->directory()[0].quant_bits, g_best);
  EXPECT_EQ(DirPoints(**tree), points);
  RunAndCheck(**tree, data, queries, 3, nullptr);

  // Durable across Flush + reopen.
  ASSERT_TRUE((*tree)->Flush().ok());
  auto reopened = IqTree::Open(storage_, "t", disk_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->directory()[0].quant_bits, g_best);
  RunAndCheck(**reopened, data, queries, 3, nullptr);
}

TEST_F(MaintenanceTest, MaintSplitAndMergePreserveAnswers) {
  const Dataset data = GenerateCadLike(4000, 8, 11);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  const Dataset queries = GenerateCadLike(10, 8, 12);
  const uint64_t points = (*tree)->size();
  const size_t pages = (*tree)->directory().size();
  ASSERT_GE(pages, 2u);

  ASSERT_TRUE((*tree)->MaintSplitEntry(0).ok());
  EXPECT_EQ((*tree)->directory().size(), pages + 1);
  EXPECT_EQ(DirPoints(**tree), points);
  RunAndCheck(**tree, data, queries, 3, nullptr);

  // Merge the split halves back (entry 0 and the appended last entry).
  const size_t last = (*tree)->directory().size() - 1;
  ASSERT_TRUE((*tree)->MaintMergeEntries(0, last).ok());
  EXPECT_EQ((*tree)->directory().size(), pages);
  EXPECT_EQ(DirPoints(**tree), points);
  RunAndCheck(**tree, data, queries, 3, nullptr);

  // Invalid maintenance calls are rejected, not applied.
  EXPECT_FALSE((*tree)->MaintRequantizeEntry(pages + 7, 8).ok());
  EXPECT_FALSE((*tree)->MaintRequantizeEntry(0, 3).ok());
  EXPECT_FALSE((*tree)->MaintMergeEntries(0, 0).ok());
}

TEST_F(MaintenanceTest, SchedulerAppliesPlannedActionsAndVerifies) {
  const Dataset data = GenerateUniform(100, 8, 7);
  IqTree::Options build;
  build.fixed_quant_bits = 2;
  auto tree = IqTree::Build(data, storage_, "t", disk_, build);
  ASSERT_TRUE(tree.ok());
  const Dataset queries = GenerateUniform(8, 8, 9);

  obs::PageStatsCollector collector;
  obs::CalibrationTracker calibration;
  maint::MaintenanceScheduler::Options options;
  options.policy.min_queries = 4;
  options.calibration = &calibration;
  maint::MaintenanceScheduler scheduler(tree->get(), &collector, options);

  RunAndCheck(**tree, data, queries, 3, &collector);
  auto round = scheduler.RunRound();
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_GT(round->applied, 0u);
  EXPECT_EQ(round->failed, 0u);
  EXPECT_GT(round->predicted_gain_s, 0.0);
  // The collector restarts once the tree changed.
  EXPECT_EQ(collector.queries(), 0u);
  RunAndCheck(**tree, data, queries, 3, &collector);

  // The next round verifies the previous prediction from the fresh
  // telemetry and records a calibration sample.
  auto verify_round = scheduler.RunRound();
  ASSERT_TRUE(verify_round.ok());
  const maint::MaintenanceStats stats = scheduler.stats();
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.verified + stats.regressed, 1u);
  // CalibrationTracker::Record compiles to a no-op under
  // IQ_OBS_DISABLED; the scheduler's own verify verdict above works in
  // both configurations (page telemetry is functional, not obs).
  if (obs::kEnabled) {
    EXPECT_EQ(calibration.Report().t3.samples, 1u);
  }

  // Converged: the same workload plans nothing further.
  RunAndCheck(**tree, data, queries, 3, &collector);
  auto settled = scheduler.RunRound();
  ASSERT_TRUE(settled.ok());
  EXPECT_EQ(settled->planned, 0u);
}

TEST_F(MaintenanceTest, SkewedWorkloadConvergesAndActionsTaper) {
  // Clustered data, queries hammering one cluster: the hit pages run
  // far above the uniform-model prediction, so maintenance has real
  // work to do — and after enough rounds of the same workload the
  // plan must taper to (near) nothing.
  const Dataset data = GenerateCadLike(8000, 8, 21);
  auto tree = IqTree::Build(data, storage_, "t", disk_, {});
  ASSERT_TRUE(tree.ok());
  Dataset queries(8);
  for (size_t i = 0; i < 16; ++i) queries.Append(data[i]);

  obs::PageStatsCollector collector;
  obs::CalibrationTracker calibration;
  maint::MaintenanceScheduler::Options options;
  options.policy.min_queries = 8;
  options.calibration = &calibration;
  maint::MaintenanceScheduler scheduler(tree->get(), &collector, options);

  std::vector<size_t> applied_per_round;
  for (size_t r = 0; r < 16; ++r) {
    RunAndCheck(**tree, data, queries, 3, &collector);
    auto round = scheduler.RunRound();
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    applied_per_round.push_back(round->applied);
    if (r >= 1 && round->applied == 0 && applied_per_round[r - 1] == 0) {
      break;  // two consecutive quiet rounds: converged
    }
  }
  std::string trajectory;
  for (size_t a : applied_per_round) {
    trajectory += std::to_string(a) + " ";
  }
  const maint::MaintenanceStats stats = scheduler.stats();
  EXPECT_EQ(stats.failed, 0u) << trajectory;
  // Convergence: maintenance did real work early and went quiet.
  EXPECT_GT(applied_per_round.front(), 0u) << trajectory;
  EXPECT_EQ(applied_per_round.back(), 0u) << trajectory;
  EXPECT_EQ(DirPoints(**tree), data.size());
}

TEST_F(MaintenanceTest, DryRunPlansWithoutTouchingTheTree) {
  const Dataset data = GenerateUniform(100, 8, 7);
  IqTree::Options build;
  build.fixed_quant_bits = 2;
  auto tree = IqTree::Build(data, storage_, "t", disk_, build);
  ASSERT_TRUE(tree.ok());
  obs::PageStatsCollector collector;
  maint::MaintenanceScheduler::Options options;
  options.dry_run = true;
  maint::MaintenanceScheduler scheduler(tree->get(), &collector, options);
  const uint64_t version = (*tree)->dir_version();
  auto round = scheduler.RunRound();
  ASSERT_TRUE(round.ok());
  EXPECT_GT(round->planned, 0u);
  EXPECT_EQ(round->applied, 0u);
  EXPECT_TRUE(round->dry_run);
  EXPECT_GT(round->predicted_gain_s, 0.0);
  EXPECT_EQ((*tree)->dir_version(), version);
  EXPECT_EQ(scheduler.stats().actions_applied, 0u);
}

TEST_F(MaintenanceTest, ShardMaintenanceRunsOverEveryShard) {
  const Dataset data = GenerateCadLike(6000, 8, 31);
  ShardedBulkLoader::Options load;
  load.num_shards = 3;
  load.disk = disk_.params();
  ShardedBulkLoader loader(storage_, "m", load);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(loader.Add(data[i]).ok());
  }
  auto manifest = loader.Finish();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  maint::ShardMaintenance::Options options;
  options.disk = disk_.params();
  options.scheduler.policy.min_queries = 4;
  auto sm = maint::ShardMaintenance::Open(storage_, "m", options);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  ASSERT_EQ((*sm)->num_shards(), 3u);

  // Feed telemetry to every shard, then run one joint round.
  for (size_t s = 0; s < (*sm)->num_shards(); ++s) {
    const IqTree* tree = (*sm)->shard_tree(s);
    IqSearchOptions search;
    search.page_stats = (*sm)->shard_collector(s);
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(tree->KNearestNeighbors(data[i], 3, search).ok());
    }
  }
  ASSERT_TRUE((*sm)->RunRound().ok());
  const maint::MaintenanceStats stats = (*sm)->AggregateStats();
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.failed, 0u);
  ASSERT_TRUE((*sm)->Flush().ok());
}

}  // namespace
}  // namespace iq
